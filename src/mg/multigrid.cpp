#include "mg/multigrid.h"

#include <algorithm>
#include <stdexcept>

#include "fields/blas.h"
#include "parallel/autotune.h"
#include "solvers/block_ca_gmres.h"
#include "solvers/block_gcr.h"
#include "solvers/block_mr.h"
#include "solvers/block_pipelined_gcr.h"
#include "util/logger.h"

namespace qmg {

template <typename T>
Multigrid<T>::Multigrid(const WilsonCloverOp<T>& fine_op, MgConfig config)
    : fine_op_(fine_op), config_(std::move(config)) {
  if (config_.levels.empty())
    throw std::invalid_argument("multigrid needs at least one coarsening");
  rebuild(/*reuse=*/false);
  // Record the probe baseline of this full setup — the reference every
  // later refresh is judged against.  Skipped when the refresh policy is
  // disabled (no update_gauge will ever read it).
  if (config_.refresh_threshold > 0) baseline_contraction_ = probe_quality();
}

template <typename T>
void Multigrid<T>::rebuild(bool reuse) {
  // A rebuild keeps only the aggregation maps (gauge-independent) and —
  // when reusing — the candidate vectors; everything derived from the
  // gauge field is reconstructed from the fine operator down.
  transfers_.clear();
  coarse_ops_.clear();
  schur_coarse_.clear();
  schur_fine_.reset();
  dist_coarse_.clear();
  ops_.clear();
  ops_.push_back(&fine_op_);
  setup_timings_ = SetupTimings{};
  candidates_.resize(config_.levels.size());

  GeometryPtr geom = fine_op_.geometry();
  const bool build_maps = maps_.empty();
  for (size_t l = 0; l < config_.levels.size(); ++l) {
    const MgLevelConfig& lvl = config_.levels[l];
    if (build_maps)
      maps_.push_back(std::make_shared<const BlockMap>(geom, lvl.block));
    const auto& map = maps_[l];

    // 1-2) Candidate null vectors.  Full build: relaxation on the
    // homogeneous system from a random start.  Refresh: the previous
    // configuration's candidates are already near-null up to the gauge
    // drift, so a short relaxation re-adapts them (the amortization the
    // hierarchy lifecycle exists for).
    std::vector<Field> null_vecs;
    const bool have_prev =
        reuse && static_cast<int>(candidates_[l].size()) == lvl.nvec &&
        !candidates_[l].empty() && candidates_[l].front().geometry() == geom;
    {
      Timer phase;
      if (have_prev) {
        null_vecs = candidates_[l];
        relax_null_vectors(*ops_[l], null_vecs, config_.refresh_null_iters,
                           lvl.smoother_omega);
      } else {
        NullSpaceParams ns_params;
        ns_params.nvec = lvl.nvec;
        ns_params.iters = lvl.null_iters;
        ns_params.omega = lvl.smoother_omega;
        ns_params.seed = config_.seed + 10000 * (l + 1);
        ns_params.method = lvl.null_method;
        ns_params.inverse_tol = lvl.null_inverse_tol;
        null_vecs = generate_null_vectors(*ops_[l], ns_params);
      }
      const double dt = phase.seconds();
      setup_timings_.null_gen_seconds += dt;
      profiler_.add("setup/null_gen", dt);
    }

    // 3) Aggregate and block-orthonormalize into the transfer operator.
    const int fine_ns = l == 0 ? 4 : CoarseDirac<T>::kNSpin;
    const int fine_nc = l == 0 ? 3 : coarse_ops_[l - 1]->ncolor();
    auto transfer =
        std::make_unique<Transfer<T>>(map, fine_ns, fine_nc, lvl.nvec);

    // 4) Galerkin coarse operator, with adaptive refinement: build, refine
    // the candidate vectors against the current two-grid method, rebuild
    // (section 3.4's "repeat until we obtain enough candidate vectors to
    // capture the near-null space").  A refresh runs the shorter
    // refresh_adaptive schedule.
    std::unique_ptr<CoarseDirac<T>> coarse;
    auto galerkin = [&]() {
      transfer->set_null_vectors(null_vecs);
      if (l == 0) {
        const WilsonStencilView<T> view(fine_op_);
        coarse = std::make_unique<CoarseDirac<T>>(
            build_coarse_operator(view, *transfer));
      } else {
        const CoarseStencilView<T> view(*coarse_ops_[l - 1]);
        coarse = std::make_unique<CoarseDirac<T>>(
            build_coarse_operator(view, *transfer));
      }
      coarse->compute_diag_inverse();
    };
    {
      Timer phase;
      galerkin();
      const double dt = phase.seconds();
      setup_timings_.galerkin_seconds += dt;
      profiler_.add("setup/galerkin", dt);
    }
    const int passes =
        reuse ? config_.refresh_adaptive_passes : lvl.adaptive_passes;
    const int refine_iters =
        reuse ? config_.refresh_adaptive_iters : lvl.adaptive_iters;
    for (int pass = 0; pass < passes; ++pass) {
      Timer phase;
      refine_null_vectors(static_cast<int>(l), *transfer, *coarse, null_vecs,
                          lvl, refine_iters);
      galerkin();
      const double dt = phase.seconds();
      setup_timings_.adaptive_seconds += dt;
      profiler_.add("setup/adaptive", dt);
    }

    // Keep the refined candidates as the next refresh's starting guess.
    candidates_[l] = null_vecs;

    geom = map->coarse();
    transfers_.push_back(std::move(transfer));
    coarse_ops_.push_back(std::move(coarse));
    ops_.push_back(coarse_ops_.back().get());

    logf(LogLevel::Verbose,
         "qmg: %s level %zu -> %zu: coarse volume %ld, Nhat_c %d\n",
         have_prev ? "refreshed" : "built", l, l + 1, geom->volume(),
         config_.levels[l].nvec);
  }

  // Red-black preconditioning on all levels (section 7.1): the Schur
  // complements used by the even-odd smoother and the coarsest-grid solve.
  const bool any_eo = config_.coarsest_eo ||
                      std::any_of(config_.levels.begin(),
                                  config_.levels.end(),
                                  [](const MgLevelConfig& l) {
                                    return l.eo_smooth;
                                  });
  if (any_eo) {
    if (config_.levels.front().eo_smooth)
      schur_fine_ = std::make_unique<SchurWilsonOp<T>>(fine_op_);
    for (const auto& coarse : coarse_ops_)
      schur_coarse_.push_back(std::make_unique<SchurCoarseOp<T>>(*coarse));
  }

  // Mixed-precision coarse storage (strategy (c)): truncate every coarse
  // level's stencil once setup — which needs native blocks for recursion
  // and adaptive refinement — is complete.  All cycle paths (K-cycle GCR,
  // Schur smoothing, batched applies) read the compressed storage through
  // the dispatching kernels and keep accumulating in T; the Schur operators
  // hold references into the same CoarseDirac objects, so they follow
  // automatically.
  if (config_.coarse_storage != CoarseStorage::Native)
    for (auto& coarse : coarse_ops_)
      coarse->compress_storage(config_.coarse_storage);
}

template <typename T>
double Multigrid<T>::probe_quality() const {
  // Asymptotic cycle contraction on a FIXED rhs: the seed ties the probe
  // vector to the hierarchy, not to the call site, so successive probes of
  // one hierarchy are comparable and the escalation decision is
  // deterministic.  The stationary iteration runs a few cycles and reports
  // the LAST residual contraction — the first cycles strip the high modes
  // any smoother handles, so the final rate is carried by the near-null
  // modes the interpolator must capture, which is precisely what a warm
  // refresh on a drifted configuration loses.  (A single-cycle probe reads
  // ~the smoother's rate and barely moves while solve iteration counts
  // climb.)
  constexpr int kProbeCycles = 3;
  Field b = fine_op_.create_vector();
  b.gaussian(config_.seed ^ 0x9E3779B97F4A7C15ull);
  double prev2 = blas::norm2(b);
  if (prev2 == 0) return 0;
  Field x = b.similar();
  Field e = b.similar();
  Field r = b.similar();
  blas::copy(r, b);
  double rate = 0;
  for (int k = 0; k < kProbeCycles; ++k) {
    blas::zero(e);
    cycle(0, e, r);
    blas::axpy(T(1), e, x);
    fine_op_.apply(r, x);
    blas::xpay(b, T(-1), r);
    const double r2 = blas::norm2(r);
    rate = std::sqrt(r2 / prev2);
    prev2 = r2;
    if (r2 == 0) break;
  }
  return rate;
}

template <typename T>
MgUpdateReport Multigrid<T>::update_gauge(const GaugeField<T>& gauge) {
  if (&gauge != &fine_op_.gauge())
    throw std::invalid_argument(
        "Multigrid::update_gauge: the hierarchy follows the gauge field its "
        "fine operator references (swapped in place by the owner); updating "
        "against a different GaugeField object would desynchronize operator "
        "and hierarchy");
  MgUpdateReport rep;
  rep.baseline_contraction = baseline_contraction_;
  rebuild(/*reuse=*/true);
  rep.timings = setup_timings_;
  if (config_.refresh_threshold > 0) {
    Timer probe_timer;
    rep.probe_contraction = probe_quality();
    rep.probe_seconds = probe_timer.seconds();
    const bool relative_regression =
        baseline_contraction_ > 0 &&
        rep.probe_contraction >
            config_.refresh_threshold * baseline_contraction_;
    // Absolute backstop: the relative test goes blind once the rebased
    // baseline drifts close to 1 (refresh_threshold x baseline exceeds any
    // achievable contraction), yet a near-1 probe means the refreshed cycle
    // is not converging on anything.
    const bool absolute_stagnation =
        config_.refresh_probe_cap < 1.0 &&
        rep.probe_contraction > config_.refresh_probe_cap;
    if (relative_regression || absolute_stagnation) {
      // The cheap refresh no longer captures the near-null space — the
      // configuration drifted too far from the one the candidates were
      // generated on.  Regenerate from scratch and rebase the baseline on
      // the new full setup.  rep keeps the TRIGGERING probe (and the
      // baseline it was judged against) so callers can see why.
      rep.escalated = true;
      rebuild(/*reuse=*/false);
      rep.timings += setup_timings_;
      setup_timings_ = rep.timings;
      Timer rebase_timer;
      baseline_contraction_ = probe_quality();
      rep.probe_seconds += rebase_timer.seconds();
      logf(LogLevel::Verbose,
           "qmg: refresh escalated to full regeneration (%s: probe %.3g, "
           "threshold %.3g x baseline %.3g, cap %.3g; fresh hierarchy "
           "probes %.3g)\n",
           relative_regression ? "relative regression" : "absolute stagnation",
           rep.probe_contraction, config_.refresh_threshold,
           rep.baseline_contraction, config_.refresh_probe_cap,
           baseline_contraction_);
    } else {
      // Accepted refresh: rebase the baseline on what the hierarchy
      // actually delivers NOW.  A physical stream drifts in intrinsic
      // difficulty (the near-null space moves with the configuration), so a
      // baseline pinned to the first build would eventually escalate on
      // every update no matter how good the refresh is.  Measuring
      // regression against the last ACCEPTED quality tolerates that
      // gradual drift and still catches a collapse — a decorrelated
      // configuration jumps the ratio in one step.
      baseline_contraction_ = rep.probe_contraction;
    }
  }
  return rep;
}

template <typename T>
void Multigrid<T>::install_level_storage(int level,
                                         const std::vector<Field>& ortho_vecs,
                                         HalfCoarseLinks stencil,
                                         std::vector<Complex<float>> diag_inv) {
  if (level < 0 || level >= num_levels() - 1)
    throw std::invalid_argument(
        "Multigrid::install_level_storage: level " + std::to_string(level) +
        " out of range [0, " + std::to_string(num_levels() - 1) + ")");
  transfers_[static_cast<size_t>(level)]->set_null_vectors(ortho_vecs);
  candidates_[static_cast<size_t>(level)] = ortho_vecs;
  coarse_ops_[static_cast<size_t>(level)]->install_half_storage(
      std::move(stencil), std::move(diag_inv));
  // Any distributed split holds copies of the replaced stencil; drop it
  // (re-enable after the restore completes).
  dist_coarse_.clear();
}

template <typename T>
void Multigrid<T>::refine_null_vectors(int level, const Transfer<T>& transfer,
                                       const CoarseDirac<T>& coarse,
                                       std::vector<Field>& vecs,
                                       const MgLevelConfig& lvl,
                                       int iters) const {
  const LinearOperator<T>& op = *ops_[level];
  const SchurCoarseOp<T> coarse_schur(coarse);

  SolverParams smooth_params;
  smooth_params.tol = 0;
  smooth_params.max_iter = std::max(lvl.post_smooth, 2);
  smooth_params.omega = lvl.smoother_omega;

  SolverParams coarse_params;
  coarse_params.tol = 0.1;
  coarse_params.max_iter = 50;
  coarse_params.restart = 10;

  auto r = op.create_vector();
  auto x = op.create_vector();
  auto r_c = transfer.create_coarse_vector();
  auto e_c = r_c.similar();

  for (auto& v : vecs) {
    for (int it = 0; it < iters; ++it) {
      // v <- (1 - B M) v with B a post-smoothed two-grid cycle: components
      // the current coarse space captures are annihilated, leaving v rich in
      // the error modes the method cannot yet treat.
      op.apply(r, v);
      blas::scale(T(-1), r);
      blas::zero(x);
      transfer.restrict_to_coarse(r_c, r);
      {
        auto b_hat = coarse_schur.create_vector();
        coarse_schur.prepare(b_hat, r_c);
        auto e_e = coarse_schur.create_vector();
        GcrSolver<T>(coarse_schur, coarse_params).solve(e_e, b_hat);
        coarse_schur.reconstruct(e_c, e_e, r_c);
      }
      transfer.prolongate(x, e_c);
      MrSolver<T>(op, smooth_params).solve(x, r);
      blas::axpy(T(1), x, v);
      const double n2 = blas::norm2(v);
      if (n2 > 0) blas::scale(static_cast<T>(1.0 / std::sqrt(n2)), v);
    }
  }
}

template <typename T>
void Multigrid<T>::smooth(int level, Field& x, const Field& b,
                          int iters) const {
  if (iters <= 0) return;
  const MgLevelConfig& lvl = config_.levels[level];
  SolverParams params;
  params.tol = 0;  // fixed iteration count (smoother mode)
  params.max_iter = iters;
  params.omega = lvl.smoother_omega;

  // Even-odd smoothing: MR on the Schur system from the current even-site
  // iterate, then exact reconstruction of the odd sites.  This is both a
  // stronger smoother per matvec (better-conditioned system) and the paper's
  // stated choice on every level.
  auto eo_smooth = [&](const auto& schur) {
    auto b_hat = schur.create_vector();
    schur.prepare(b_hat, b);
    auto x_e = schur.create_vector();
    extract_parity(x_e, x, /*parity=*/0);
    MrSolver<T>(schur, params).solve(x_e, b_hat);
    schur.reconstruct(x, x_e, b);
  };
  if (lvl.eo_smooth && level == 0 && schur_fine_) {
    eo_smooth(*schur_fine_);
  } else if (lvl.eo_smooth && level > 0 &&
             static_cast<size_t>(level) <= schur_coarse_.size()) {
    eo_smooth(*schur_coarse_[level - 1]);
  } else {
    MrSolver<T>(*ops_[level], params).solve(x, b);
  }
}

template <typename T>
void Multigrid<T>::cycle(int level, Field& x, const Field& b) const {
  const ScopedTimer level_timer(profiler_, "level" + std::to_string(level));
  const LinearOperator<T>& op = *ops_[level];
  blas::zero(x);

  // Coarsest grid: direct GCR solve to loose tolerance, on the Schur system
  // when configured (red-black on all levels, section 7.1).
  if (level == num_levels() - 1) {
    SolverParams params;
    params.tol = config_.coarsest_tol;
    params.max_iter = config_.coarsest_maxiter;
    params.restart = config_.coarsest_krylov;
    if (config_.coarsest_eo && level > 0 &&
        static_cast<size_t>(level) <= schur_coarse_.size()) {
      const auto& schur = *schur_coarse_[level - 1];
      auto b_hat = schur.create_vector();
      schur.prepare(b_hat, b);
      auto x_e = schur.create_vector();
      GcrSolver<T>(schur, params).solve(x_e, b_hat);
      schur.reconstruct(x, x_e, b);
    } else {
      GcrSolver<T>(op, params).solve(x, b);
    }
    return;
  }

  const MgLevelConfig& lvl = config_.levels[level];

  // Pre-smoothing.
  smooth(level, x, b, lvl.pre_smooth);

  // Coarse-grid correction on the residual.
  auto r = op.create_vector();
  if (lvl.pre_smooth > 0) {
    op.apply(r, x);
    blas::xpay(b, T(-1), r);
  } else {
    blas::copy(r, b);
  }
  auto r_c = transfers_[level]->create_coarse_vector();
  transfers_[level]->restrict_to_coarse(r_c, r);
  auto e_c = r_c.similar();

  if (config_.cycle == CycleType::KCycle) {
    // K-cycle: GCR(k) on the coarse system, preconditioned by the next
    // level's cycle (the "recursively preconditioned GCR" of section 7.1).
    SolverParams params;
    params.tol = lvl.cycle_tol;
    params.max_iter = lvl.cycle_maxiter;
    params.restart = lvl.cycle_krylov;
    LevelPreconditioner precond(*this, level + 1);
    GcrSolver<T>(*ops_[level + 1], params, &precond).solve(e_c, r_c);
  } else {
    // V-cycle: single recursive application.
    cycle(level + 1, e_c, r_c);
  }

  // Prolongate and add the correction.
  auto correction = op.create_vector();
  transfers_[level]->prolongate(correction, e_c);
  blas::axpy(T(1), correction, x);

  // Post-smoothing.
  smooth(level, x, b, lvl.post_smooth);
}

template <typename T>
void Multigrid<T>::smooth_block(int level, BlockField& x, const BlockField& b,
                                int iters) const {
  if (iters <= 0) return;
  const MgLevelConfig& lvl = config_.levels[level];
  SolverParams params;
  params.tol = 0;  // fixed iteration count (smoother mode)
  params.max_iter = iters;
  params.omega = lvl.smoother_omega;

  // Masked block MR (solvers/block_mr.h): the whole batch smooths through
  // one batched solver — per-rhs iterate state lives in the block fields,
  // per-rhs masking freezes converged/broken-down systems — instead of
  // streaming rhs through the single-rhs MrSolver.  Per rhs the iterates
  // are bit-identical to that streamed path.  The even-odd form mirrors
  // smooth(): block MR on the Schur system from the current even-site
  // iterate, then exact batched reconstruction of the odd sites; the
  // Schur operator applications route through the distributed adapter
  // when this level's coarse operator is distributed.
  auto eo_smooth = [&](const auto& schur, const LinearOperator<T>& op) {
    BlockField b_hat = schur.create_block(b.nrhs());
    schur.prepare_block(b_hat, b);
    BlockField x_e = b_hat.similar();
    extract_parity_block(x_e, x, /*parity=*/0);
    BlockMrSolver<T>(op, params).solve(x_e, b_hat);
    schur.reconstruct_block(x, x_e, b);
  };
  if (lvl.eo_smooth && level == 0 && schur_fine_) {
    eo_smooth(*schur_fine_, *schur_fine_);
  } else if (lvl.eo_smooth && level > 0 &&
             static_cast<size_t>(level) <= schur_coarse_.size()) {
    eo_smooth(*schur_coarse_[level - 1], schur_block_op(level));
  } else {
    BlockMrSolver<T>(block_op(level), params).solve(x, b);
  }
}

template <typename T>
void Multigrid<T>::cycle_block(int level, BlockField& x,
                               const BlockField& b) const {
  const ScopedTimer level_timer(profiler_, "level" + std::to_string(level));
  // Every operator application of the batched cycle goes through block_op /
  // schur_block_op: the replicated operator normally, the distributed
  // adapter (batched halos, optional overlap) when
  // enable_distributed_coarse covered this level — bit-identical either
  // way at a pinned kernel config.
  const LinearOperator<T>& op = block_op(level);
  const int nrhs = b.nrhs();
  blas::block_zero(x);

  // Coarsest grid: batched solve to loose tolerance with per-rhs
  // convergence masking, on the Schur system when configured.  This is the
  // latency-bound regime the distributed dispatch exists for — each Schur
  // matvec nests two batched halo exchanges amortized over all nrhs, and
  // config_.coarsest_solver picks how the remaining global reductions are
  // scheduled (GCR reference / s-step CA / pipelined; see CoarsestSolver).
  if (level == num_levels() - 1) {
    if (config_.coarsest_eo && level > 0 &&
        static_cast<size_t>(level) <= schur_coarse_.size()) {
      const auto& schur = *schur_coarse_[level - 1];
      BlockField b_hat = schur.create_block(nrhs);
      schur.prepare_block(b_hat, b);
      BlockField x_e = b_hat.similar();
      solve_coarsest(schur_block_op(level), x_e, b_hat);
      schur.reconstruct_block(x, x_e, b);
    } else {
      solve_coarsest(op, x, b);
    }
    return;
  }

  const MgLevelConfig& lvl = config_.levels[level];

  // Pre-smoothing.
  smooth_block(level, x, b, lvl.pre_smooth);

  // Coarse-grid correction on the batched residual.
  BlockField r = b.similar();
  if (lvl.pre_smooth > 0) {
    op.apply_block(r, x);
    blas::block_xpay(b, std::vector<T>(static_cast<size_t>(nrhs), T(-1)), r);
  } else {
    blas::block_copy(r, b);
  }
  BlockField r_c = transfers_[level]->create_coarse_block(nrhs);
  transfers_[level]->restrict_to_coarse(r_c, r);
  BlockField e_c = r_c.similar();

  if (config_.cycle == CycleType::KCycle) {
    // Block K-cycle: masked block GCR on the coarse system, preconditioned
    // by the next level's batched cycle — this is where the coarse solves
    // feed the multi-rhs coarse apply with real batches.
    SolverParams params;
    params.tol = lvl.cycle_tol;
    params.max_iter = lvl.cycle_maxiter;
    params.restart = lvl.cycle_krylov;
    BlockLevelPreconditioner precond(*this, level + 1);
    BlockGcrSolver<T>(block_op(level + 1), params, &precond).solve(e_c, r_c);
  } else {
    // Block V-cycle: single recursive batched application.
    cycle_block(level + 1, e_c, r_c);
  }

  // Prolongate and add the correction (batched).
  BlockField correction = b.similar();
  transfers_[level]->prolongate(correction, e_c);
  blas::block_axpy(std::vector<T>(static_cast<size_t>(nrhs), T(1)),
                   correction, x);

  // Post-smoothing.
  smooth_block(level, x, b, lvl.post_smooth);
}

template <typename T>
BlockSolverResult Multigrid<T>::solve_coarsest(const LinearOperator<T>& op,
                                               BlockField& x,
                                               const BlockField& b) const {
  SolverParams params;
  params.tol = config_.coarsest_tol;
  params.max_iter = config_.coarsest_maxiter;
  params.restart = config_.coarsest_krylov;
  switch (config_.coarsest_solver) {
    case CoarsestSolver::CaGmres: {
      const int s = coarsest_ca_depth(op, b);
      return BlockCaGmresSolver<T>(op, params, s, &coarsest_comm_)
          .solve(x, b);
    }
    case CoarsestSolver::PipelinedGcr:
      return PipelinedBlockGcrSolver<T>(op, params, /*pipeline=*/true,
                                        &coarsest_comm_)
          .solve(x, b);
    case CoarsestSolver::BlockGcr:
      break;
  }
  // Reference block GCR meters its syncs too, through the result: its
  // reductions are plain blas calls, so the count (the quantity the
  // ablation compares) is charged here from block_reductions, with the
  // worst-case payload of its syncs (a block_cdot: 2 doubles per rhs).
  BlockSolverResult res = BlockGcrSolver<T>(op, params).solve(x, b);
  for (long i = 0; i < res.block_reductions; ++i)
    coarsest_comm_.count_allreduce(2L * b.nrhs());
  return res;
}

template <typename T>
int Multigrid<T>::coarsest_ca_depth(const LinearOperator<T>& op,
                                    const BlockField& b) const {
  if (config_.coarsest_ca_s > 0) return config_.coarsest_ca_s;
  const int nrhs = b.nrhs();
  if (static_cast<size_t>(nrhs) >= tuned_ca_s_.size())
    tuned_ca_s_.resize(static_cast<size_t>(nrhs) + 1, 0);
  int& cached = tuned_ca_s_[static_cast<size_t>(nrhs)];
  if (cached > 0) return cached;
  // First coarsest solve at this batch width: time the {2, 4, 8} sweep on
  // the real (x, b) pair — each candidate solves the same system from the
  // same zero guess into a scratch copy, so tuning never perturbs the
  // cycle's iterate — and persist the winner through the TuneCache.
  const CoarseDirac<T>& bottom = *coarse_ops_.back();
  const std::string key =
      ca_tune_key(b.rhs_size(), nrhs, bottom.precision_tag());
  SolverParams params;
  params.tol = config_.coarsest_tol;
  params.max_iter = config_.coarsest_maxiter;
  params.restart = config_.coarsest_krylov;
  cached = TuneCache::instance().tune_param(key, {2, 4, 8}, [&](int s) {
    BlockField x_try = b.similar();
    blas::block_zero(x_try);
    Timer t;
    BlockCaGmresSolver<T>(op, params, s).solve(x_try, b);
    return t.seconds();
  });
  logf(LogLevel::Verbose, "qmg: coarsest CA s tuned to %d (nrhs=%d)\n",
       cached, nrhs);
  return cached;
}

template <typename T>
int Multigrid<T>::enable_distributed_coarse(int nranks, HaloMode mode,
                                            WirePrecision wire) {
  dist_coarse_.clear();
  dist_coarse_.resize(static_cast<size_t>(num_levels()));
  if (nranks <= 1) return 0;
  int distributed = 0;
  for (int level = 1; level < num_levels(); ++level) {
    const CoarseDirac<T>& cop = *coarse_ops_[level - 1];
    DecompositionPtr dec;
    try {
      dec = make_decomposition(cop.geometry(), nranks);
    } catch (const std::exception& e) {
      // Grid not factorable at this rank count (odd extents, unit local
      // dims): the level stays replicated and the cycle remains correct.
      logf(LogLevel::Verbose,
           "qmg: level %d stays replicated (%s)\n", level, e.what());
      continue;
    }
    auto& entry = dist_coarse_[static_cast<size_t>(level)];
    entry.op = std::make_unique<DistributedCoarseOp<T>>(cop, dec);
    entry.full = std::make_unique<DistributedBlockCoarseOp<T>>(
        cop, *entry.op, mode, wire);
    if (static_cast<size_t>(level) <= schur_coarse_.size() &&
        schur_coarse_[level - 1])
      entry.schur = std::make_unique<DistributedSchurCoarseOp<T>>(
          *schur_coarse_[level - 1], *entry.op, mode, wire);
    ++distributed;
    logf(LogLevel::Verbose,
         "qmg: level %d distributed over %d ranks (local volume %ld)\n",
         level, nranks, dec->local_volume());
  }
  return distributed;
}

template <typename T>
void Multigrid<T>::disable_distributed_coarse() {
  dist_coarse_.clear();
}

template <typename T>
int Multigrid<T>::distributed_coarse_levels() const {
  int n = 0;
  for (const auto& entry : dist_coarse_)
    if (entry.op) ++n;
  return n;
}

template <typename T>
const DistributedCoarseOp<T>* Multigrid<T>::distributed_coarse_op(
    int level) const {
  if (level < 0 || static_cast<size_t>(level) >= dist_coarse_.size())
    return nullptr;
  return dist_coarse_[static_cast<size_t>(level)].op.get();
}

template <typename T>
CommStats Multigrid<T>::distributed_comm_stats() const {
  // Each adapter meters its own exchanges exactly once (the Schur
  // adapter's nested hops write only its counters), so the merge is a
  // plain disjoint sum — no exchange can land in two adapters.
  CommStats total;
  for (const auto& entry : dist_coarse_) {
    if (entry.full) total += entry.full->comm_stats();
    if (entry.schur) total += entry.schur->comm_stats();
  }
  return total;
}

template <typename T>
void Multigrid<T>::reset_distributed_comm_stats() {
  for (auto& entry : dist_coarse_) {
    if (entry.full) entry.full->reset_comm_stats();
    if (entry.schur) entry.schur->reset_comm_stats();
  }
}

template class Multigrid<double>;
template class Multigrid<float>;

}  // namespace qmg
