#include "mg/transfer.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "parallel/dispatch.h"

namespace qmg {

template <typename T>
Transfer<T>::Transfer(std::shared_ptr<const BlockMap> map, int fine_nspin,
                      int fine_ncolor, int nvec)
    : map_(std::move(map)),
      fine_nspin_(fine_nspin),
      fine_ncolor_(fine_ncolor),
      nvec_(nvec) {
  if (fine_nspin_ % 2 != 0)
    throw std::invalid_argument("fine nspin must be even for chirality split");
}

template <typename T>
void Transfer<T>::set_null_vectors(const std::vector<Field>& vecs) {
  if (static_cast<int>(vecs.size()) != nvec_)
    throw std::invalid_argument("wrong number of null vectors");
  for (const auto& v : vecs) {
    if (v.nspin() != fine_nspin_ || v.ncolor() != fine_ncolor_ ||
        v.geometry() != map_->fine())
      throw std::invalid_argument("null vector has wrong shape");
  }
  vecs_ = vecs;
  block_orthonormalize();
}

template <typename T>
void Transfer<T>::block_orthonormalize() {
  const long n_blocks = map_->coarse()->volume();
  const int half_spin = fine_nspin_ / 2;

  // Two passes of modified Gram-Schmidt per aggregate: numerically robust
  // local QR (paper section 3.4, step 3).  One dispatch item per aggregate
  // ("thread block"); aggregates are disjoint site sets, so items never
  // alias.
  parallel_for(n_blocks, [&](long b) {
    const auto& sites = map_->block_sites(b);
    for (int ch = 0; ch < 2; ++ch) {
      const int s0 = ch * half_spin;
      for (int k = 0; k < nvec_; ++k) {
        for (int pass = 0; pass < 2; ++pass) {
          for (int j = 0; j < k; ++j) {
            // proj = <v_j, v_k> over the aggregate.
            Complex<T> proj{};
            for (const long x : sites)
              for (int s = s0; s < s0 + half_spin; ++s)
                for (int c = 0; c < fine_ncolor_; ++c)
                  proj += conj_mul(vecs_[j](x, s, c), vecs_[k](x, s, c));
            for (const long x : sites)
              for (int s = s0; s < s0 + half_spin; ++s)
                for (int c = 0; c < fine_ncolor_; ++c)
                  vecs_[k](x, s, c) -= proj * vecs_[j](x, s, c);
          }
        }
        T nrm2{};
        for (const long x : sites)
          for (int s = s0; s < s0 + half_spin; ++s)
            for (int c = 0; c < fine_ncolor_; ++c)
              nrm2 += norm2(vecs_[k](x, s, c));
        if (nrm2 <= T(0))
          throw std::runtime_error(
              "aggregate became rank deficient during orthonormalization");
        const T inv = T(1) / std::sqrt(nrm2);
        for (const long x : sites)
          for (int s = s0; s < s0 + half_spin; ++s)
            for (int c = 0; c < fine_ncolor_; ++c) vecs_[k](x, s, c) *= inv;
      }
    }
  });
}

template <typename T>
void Transfer<T>::prolongate(Field& fine, const Field& coarse) const {
  assert(fine.nspin() == fine_nspin_ && fine.ncolor() == fine_ncolor_);
  assert(coarse.nspin() == 2 && coarse.ncolor() == nvec_);
  const long vf = map_->fine()->volume();
  const int half_spin = fine_nspin_ / 2;
  // Gather: one independent dispatch item per fine-grid site.
  parallel_for(vf, [&](long x) {
    const long b = map_->coarse_site(x);
    for (int s = 0; s < fine_nspin_; ++s) {
      const int ch = s / half_spin;
      for (int c = 0; c < fine_ncolor_; ++c) {
        Complex<T> acc{};
        for (int k = 0; k < nvec_; ++k)
          acc += vecs_[k](x, s, c) * coarse(b, ch, k);
        fine(x, s, c) = acc;
      }
    }
  });
}

template <typename T>
void Transfer<T>::restrict_to_coarse(Field& coarse, const Field& fine) const {
  assert(fine.nspin() == fine_nspin_ && fine.ncolor() == fine_ncolor_);
  assert(coarse.nspin() == 2 && coarse.ncolor() == nvec_);
  const long n_blocks = map_->coarse()->volume();
  const int half_spin = fine_nspin_ / 2;
  // One aggregate per dispatch item; local reduction replaces the scatter
  // (no atomics needed), matching the GPU kernel of section 6.6.
  parallel_for(n_blocks, [&](long b) {
    const auto& sites = map_->block_sites(b);
    for (int ch = 0; ch < 2; ++ch) {
      const int s0 = ch * half_spin;
      for (int k = 0; k < nvec_; ++k) {
        Complex<T> acc{};
        for (const long x : sites)
          for (int s = s0; s < s0 + half_spin; ++s)
            for (int c = 0; c < fine_ncolor_; ++c)
              acc += conj_mul(vecs_[k](x, s, c), fine(x, s, c));
        coarse(b, ch, k) = acc;
      }
    }
  });
}

template <typename T>
void Transfer<T>::prolongate(BlockField& fine, const BlockField& coarse) const {
  if (fine.nspin() != fine_nspin_ || fine.ncolor() != fine_ncolor_ ||
      coarse.nspin() != 2 || coarse.ncolor() != nvec_ ||
      fine.nrhs() != coarse.nrhs())
    throw std::invalid_argument("block prolongate: shape mismatch");
  const long vf = map_->fine()->volume();
  const int half_spin = fine_nspin_ / 2;
  const int nrhs = fine.nrhs();
  const LaunchPolicy policy = default_policy();
  // Gather per (fine site, rhs); the per-rhs accumulation order is exactly
  // the single-rhs kernel's, so results are bit-identical per rhs.  The
  // width path packs W consecutive rhs per lane group (both block fields
  // are rhs-contiguous, so loads/stores are one deinterleave per dof) and
  // runs the nrhs % W tail through the scalar body.
  auto scalar_site = [&](long x, int rhs) {
    const long b = map_->coarse_site(x);
    for (int s = 0; s < fine_nspin_; ++s) {
      const int ch = s / half_spin;
      for (int c = 0; c < fine_ncolor_; ++c) {
        Complex<T> acc{};
        for (int k = 0; k < nvec_; ++k)
          acc += vecs_[k](x, s, c) * coarse(b, ch, k, rhs);
        fine(x, s, c, rhs) = acc;
      }
    }
  };
  const int w = simd::width_for(effective_simd_width(policy),
                                static_cast<long>(nrhs));
  if (w > 1) {
    simd::dispatch_width(w, [&](auto wc) {
      constexpr int W = decltype(wc)::value;
      using V = simd::cpack<T, W>;
      const int ngroups = nrhs / W;
      LaunchPolicy p = align_rhs_block(policy, W);
      if (p.rhs_block > 0) p.rhs_block /= W;
      parallel_for_2d(vf, ngroups, p, [&](long x, long g) {
        const int k0 = static_cast<int>(g) * W;
        const long b = map_->coarse_site(x);
        for (int s = 0; s < fine_nspin_; ++s) {
          const int ch = s / half_spin;
          for (int c = 0; c < fine_ncolor_; ++c) {
            V acc{};
            for (int k = 0; k < nvec_; ++k)
              acc += vecs_[k](x, s, c) * V::load(&coarse(b, ch, k, k0));
            acc.store(&fine(x, s, c, k0));
          }
        }
      });
      const int ktail = ngroups * W;
      if (ktail < nrhs)
        parallel_for_2d(vf, nrhs - ktail, policy, [&](long x, long kk) {
          scalar_site(x, ktail + static_cast<int>(kk));
        });
    });
    return;
  }
  parallel_for_2d(vf, nrhs, policy, [&](long x, long kk) {
    scalar_site(x, static_cast<int>(kk));
  });
}

template <typename T>
void Transfer<T>::restrict_to_coarse(BlockField& coarse,
                                     const BlockField& fine) const {
  if (fine.nspin() != fine_nspin_ || fine.ncolor() != fine_ncolor_ ||
      coarse.nspin() != 2 || coarse.ncolor() != nvec_ ||
      fine.nrhs() != coarse.nrhs())
    throw std::invalid_argument("block restrict: shape mismatch");
  const long n_blocks = map_->coarse()->volume();
  const int half_spin = fine_nspin_ / 2;
  const int nrhs = fine.nrhs();
  const LaunchPolicy policy = default_policy();
  // One (aggregate, rhs) pair per dispatch item; the aggregate's null-vector
  // data is reused across consecutive rhs of its tile.  The width path
  // reduces W rhs lanes at once — the per-lane accumulation walks the
  // aggregate in exactly the scalar order, so per-rhs coarse values are
  // bit-identical; the nrhs % W tail runs the scalar body.
  auto scalar_site = [&](long b, int rhs) {
    const auto& sites = map_->block_sites(b);
    for (int ch = 0; ch < 2; ++ch) {
      const int s0 = ch * half_spin;
      for (int k = 0; k < nvec_; ++k) {
        Complex<T> acc{};
        for (const long x : sites)
          for (int s = s0; s < s0 + half_spin; ++s)
            for (int c = 0; c < fine_ncolor_; ++c)
              acc += conj_mul(vecs_[k](x, s, c), fine(x, s, c, rhs));
        coarse(b, ch, k, rhs) = acc;
      }
    }
  };
  const int w = simd::width_for(effective_simd_width(policy),
                                static_cast<long>(nrhs));
  if (w > 1) {
    simd::dispatch_width(w, [&](auto wc) {
      constexpr int W = decltype(wc)::value;
      using V = simd::cpack<T, W>;
      const int ngroups = nrhs / W;
      LaunchPolicy p = align_rhs_block(policy, W);
      if (p.rhs_block > 0) p.rhs_block /= W;
      parallel_for_2d(n_blocks, ngroups, p, [&](long b, long g) {
        const int k0 = static_cast<int>(g) * W;
        const auto& sites = map_->block_sites(b);
        for (int ch = 0; ch < 2; ++ch) {
          const int s0 = ch * half_spin;
          for (int k = 0; k < nvec_; ++k) {
            V acc{};
            for (const long x : sites)
              for (int s = s0; s < s0 + half_spin; ++s)
                for (int c = 0; c < fine_ncolor_; ++c)
                  acc += simd::conj_mul(vecs_[k](x, s, c),
                                        V::load(&fine(x, s, c, k0)));
            acc.store(&coarse(b, ch, k, k0));
          }
        }
      });
      const int ktail = ngroups * W;
      if (ktail < nrhs)
        parallel_for_2d(n_blocks, nrhs - ktail, policy, [&](long b, long kk) {
          scalar_site(b, ktail + static_cast<int>(kk));
        });
    });
    return;
  }
  parallel_for_2d(n_blocks, nrhs, policy, [&](long b, long kk) {
    scalar_site(b, static_cast<int>(kk));
  });
}

template class Transfer<double>;
template class Transfer<float>;

}  // namespace qmg
