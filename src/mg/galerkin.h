#pragma once
// Galerkin construction of the coarse operator, Mhat = P^dag M P (paper
// section 3.4, step 4).
//
// Rather than applying M to prolongated unit vectors, the coarse link and
// diagonal blocks are accumulated directly from the fine stencil: every fine
// hop either stays inside an aggregate (contributing to the coarse diagonal
// X) or crosses an aggregate boundary (contributing to the coarse link Y in
// that direction).  Nearest-neighbor structure is therefore preserved
// exactly, as the paper notes below Eq. 3.

#include "mg/coarse_op.h"
#include "mg/stencil.h"
#include "mg/transfer.h"

namespace qmg {

/// Build the coarse operator for `transfer` from the fine stencil view.
/// The result has ncolor = transfer.nvec() and nspin = 2.
///
/// `storage` selects the emitted link/diag storage format (paper section 4,
/// strategy (c)): the Galerkin accumulation always runs in the working
/// precision T — truncating only the finished product keeps the setup
/// numerics independent of the storage choice — and the result is then
/// compressed via CoarseDirac::compress_storage, with the diagonal inverse
/// precomputed from the native blocks first (so Schur preconditioning on
/// the compressed operator never inverts quantized input).  Note that a
/// compressed operator cannot seed a further coarsening (CoarseStencilView
/// needs native blocks), so recursive setups compress only after the full
/// hierarchy exists (what Multigrid does).
template <typename T>
CoarseDirac<T> build_coarse_operator(
    const StencilView<T>& fine, const Transfer<T>& transfer,
    CoarseStorage storage = CoarseStorage::Native);

}  // namespace qmg
