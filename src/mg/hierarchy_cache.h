#pragma once
// Snapshot cache of multigrid hierarchies, keyed by gauge-configuration id
// (the hierarchy-lifecycle layer above Multigrid::update_gauge).
//
// A streamed analysis revisits configurations — propagators on config N,
// then N+1, then back to N for a second source — and re-running even the
// cheap update_gauge refresh on a configuration whose hierarchy was already
// adapted wastes its whole cost.  A snapshot captures exactly the state a
// hierarchy needs to be reinstalled: per level, the block-orthonormalized
// prolongator columns and the coarse stencil, both in the Half16 quantized
// formats of PR 4 (fields/halffield.h, fields/halflinks.h) so a cached
// hierarchy costs ~4x less memory than a live native one, plus the float
// diagonal inverse (conditioning-sensitive, never quantized) and the
// quality-probe baseline recorded at the snapshot's last full setup.
//
// Restore installs the snapshot into the EXISTING transfer and coarse
// operator objects (Multigrid::install_level_storage), so every reference
// the solver stack holds — Schur complements, preconditioners — stays
// valid.  The restored hierarchy runs Half16 coarse storage regardless of
// the configured format; its quantization error lands inside the K-cycle
// preconditioner where the outer flexible solve bounds it, and the quality
// probe watches it like any other refresh.
//
// Thread safety: the cache is a shared service (SolveQueue tenants update
// gauges from the dispatcher thread while clients snapshot stats), so every
// member goes through the PR-9 annotated mutex.  snapshot()/install() are
// static and touch only their arguments.

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "mg/multigrid.h"
#include "util/thread_annotations.h"

namespace qmg {

/// One coarsening level of a snapshot: the quantized prolongator columns
/// (already block-orthonormalized when captured), the quantized coarse
/// stencil, and the float diagonal inverse.
struct LevelSnapshot {
  std::vector<HalfSpinorField> vectors;
  HalfCoarseLinks stencil;
  std::vector<Complex<float>> diag_inv;

  size_t bytes() const;
};

/// A whole hierarchy: one LevelSnapshot per coarsening, plus the probe
/// baseline the restored hierarchy should compare refreshes against.
struct HierarchySnapshot {
  std::vector<LevelSnapshot> levels;
  double baseline_contraction = 0;

  size_t bytes() const;
};

class HierarchyCache {
 public:
  struct Stats {
    long stores = 0;
    long hits = 0;
    long misses = 0;
    long evictions = 0;
    size_t entries = 0;
    size_t bytes = 0;  // of all currently cached snapshots
  };

  /// `capacity` = max cached snapshots; oldest-inserted evicted first.
  /// 0 disables the cache: store() drops, restore() always misses.
  explicit HierarchyCache(size_t capacity = 4) : capacity_(capacity) {}

  size_t capacity() const { return capacity_; }

  /// Capture the hierarchy's per-level state (quantizing on the way in)
  /// plus its probe baseline.
  template <typename T>
  static HierarchySnapshot snapshot(const Multigrid<T>& mg);

  /// Install a snapshot into an existing hierarchy of the same shape
  /// (level count, geometries, nvec); throws std::invalid_argument on a
  /// level-count mismatch, and the per-level installers validate the rest.
  template <typename T>
  static void install(const HierarchySnapshot& snap, Multigrid<T>& mg);

  /// Cache mg's current hierarchy under `config_id` (no-op at capacity 0).
  /// Re-storing an existing key replaces the snapshot and refreshes its
  /// eviction age.
  template <typename T>
  void store(const std::string& config_id, const Multigrid<T>& mg)
      QMG_EXCLUDES(mu_);

  /// Install the snapshot cached under `config_id` into mg and return
  /// true; false (mg untouched) when the id is not cached.  The install
  /// runs outside the cache lock — only the snapshot copy is under it.
  template <typename T>
  bool restore(const std::string& config_id, Multigrid<T>& mg)
      QMG_EXCLUDES(mu_);

  bool contains(const std::string& config_id) const QMG_EXCLUDES(mu_);
  void clear() QMG_EXCLUDES(mu_);
  Stats stats() const QMG_EXCLUDES(mu_);

 private:
  void store_snapshot(const std::string& config_id, HierarchySnapshot snap)
      QMG_EXCLUDES(mu_);
  /// Copies the snapshot out under the lock (miss: returns false).
  bool lookup(const std::string& config_id, HierarchySnapshot& out)
      QMG_EXCLUDES(mu_);

  size_t capacity_;
  mutable Mutex mu_;
  std::map<std::string, HierarchySnapshot> entries_ QMG_GUARDED_BY(mu_);
  std::vector<std::string> order_ QMG_GUARDED_BY(mu_);  // insertion FIFO
  Stats stats_ QMG_GUARDED_BY(mu_);
};

}  // namespace qmg
