#pragma once
// Generic stencil view: exposes any nearest-neighbor operator (fine Wilson-
// Clover or a coarse operator) as per-site dense coefficient blocks
//
//   M_{x,x'} = diag(x) delta_{x,x'} + sum_{mu,dir} hop(x,mu,dir) delta_{nbr(x),x'}
//
// This uniform algebraic form is what makes the Galerkin construction
// recursive: the same builder coarsens level 1 -> 2 (from Wilson-Clover)
// and level 2 -> 3 (from a coarse operator), paper section 3.4.

#include <stdexcept>

#include "dirac/gamma.h"
#include "dirac/wilson.h"
#include "lattice/geometry.h"
#include "linalg/smallmat.h"
#include "mg/coarse_op.h"

namespace qmg {

template <typename T>
class StencilView {
 public:
  virtual ~StencilView() = default;

  virtual const GeometryPtr& geometry() const = 0;
  virtual int nspin() const = 0;
  virtual int ncolor() const = 0;
  int site_dof() const { return nspin() * ncolor(); }

  /// Coefficient block of in(neighbor(site, mu, dir)) in out(site);
  /// dir 0 = forward, 1 = backward.  Row/col index = spin*ncolor + color.
  virtual SmallMatrix<T> hop_matrix(long site, int mu, int dir) const = 0;

  /// Coefficient block of in(site) in out(site).
  virtual SmallMatrix<T> diag_matrix(long site) const = 0;
};

/// Wilson-Clover as a stencil view.
template <typename T>
class WilsonStencilView : public StencilView<T> {
 public:
  explicit WilsonStencilView(const WilsonCloverOp<T>& op) : op_(op) {}

  const GeometryPtr& geometry() const override { return op_.geometry(); }
  int nspin() const override { return 4; }
  int ncolor() const override { return 3; }

  SmallMatrix<T> hop_matrix(long site, int mu, int dir) const override {
    const auto& algebra = GammaAlgebra::instance();
    const auto& geom = *op_.geometry();
    // Forward: -1/2 xi_mu (1 - gamma_mu) U_mu(x);
    // backward: -1/2 xi_mu (1 + gamma_mu) U_mu(x-mu)^dag.
    const Su3<T> u = dir == 0
                         ? op_.gauge().link(mu, site)
                         : adjoint(op_.gauge().link(
                               mu, geom.neighbor_bwd(site, mu)));
    const SpinMatrix& p = algebra.projector(mu, dir);
    const T coef = (mu == 3 ? op_.params().anisotropy : T(1)) * T(-0.5);
    SmallMatrix<T> h(12, 12);
    for (int sp = 0; sp < 4; ++sp)
      for (int s = 0; s < 4; ++s) {
        const complexd pd = p(sp, s);
        if (norm2(pd) < 1e-28) continue;
        const Complex<T> w =
            Complex<T>(static_cast<T>(pd.re), static_cast<T>(pd.im)) * coef;
        for (int cp = 0; cp < 3; ++cp)
          for (int c = 0; c < 3; ++c) h(3 * sp + cp, 3 * s + c) = w * u(cp, c);
      }
    return h;
  }

  SmallMatrix<T> diag_matrix(long site) const override {
    SmallMatrix<T> d(12, 12);
    const T shift = T(4) + op_.params().mass;
    for (int k = 0; k < 12; ++k) d(k, k) = Complex<T>(shift);
    if (op_.clover()) {
      for (int ch = 0; ch < 2; ++ch) {
        const auto& block = op_.clover()->block(site, ch);
        for (int r = 0; r < 6; ++r)
          for (int c = 0; c < 6; ++c) d(6 * ch + r, 6 * ch + c) += block(r, c);
      }
    }
    return d;
  }

 private:
  const WilsonCloverOp<T>& op_;
};

/// A coarse operator as a stencil view (enables recursive coarsening).
template <typename T>
class CoarseStencilView : public StencilView<T> {
 public:
  explicit CoarseStencilView(const CoarseDirac<T>& op) : op_(op) {
    if (!op.has_native_storage())
      throw std::invalid_argument(
          "CoarseStencilView: recursive coarsening reads native link blocks; "
          "compress_storage only after the hierarchy is built");
  }

  const GeometryPtr& geometry() const override { return op_.geometry(); }
  int nspin() const override { return CoarseDirac<T>::kNSpin; }
  int ncolor() const override { return op_.ncolor(); }

  SmallMatrix<T> hop_matrix(long site, int mu, int dir) const override {
    const int n = op_.block_dim();
    SmallMatrix<T> h(n, n);
    const Complex<T>* src = op_.link_data(site, 2 * mu + dir);
    for (int r = 0; r < n; ++r)
      for (int c = 0; c < n; ++c) h(r, c) = src[static_cast<size_t>(r) * n + c];
    return h;
  }

  SmallMatrix<T> diag_matrix(long site) const override {
    const int n = op_.block_dim();
    SmallMatrix<T> d(n, n);
    const Complex<T>* src = op_.diag_data(site);
    for (int r = 0; r < n; ++r)
      for (int c = 0; c < n; ++c) d(r, c) = src[static_cast<size_t>(r) * n + c];
    return d;
  }

 private:
  const CoarseDirac<T>& op_;
};

}  // namespace qmg
