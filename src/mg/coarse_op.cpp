#include "mg/coarse_op.h"

#include <cassert>
#include <stdexcept>
#include <string>

#include "dirac/gamma.h"
#include "gpusim/kernels.h"
#include "mg/coarse_row.h"
#include "mg/coarse_stencil.h"
#include "parallel/autotune.h"
#include "util/timer.h"

namespace qmg {

using detail::DenseStencil;
using detail::HalfStencil;
using detail::sim_precision;

template <typename T>
CoarseDirac<T>::CoarseDirac(GeometryPtr geom, int ncolor)
    : geom_(std::move(geom)), nc_(ncolor), n_(2 * ncolor) {
  const size_t per_site = static_cast<size_t>(n_) * n_;
  links_.assign(static_cast<size_t>(geom_->volume()) * kNLinks * per_site,
                Complex<T>{});
  diag_.assign(static_cast<size_t>(geom_->volume()) * per_site, Complex<T>{});
}

template <typename T>
typename CoarseDirac<T>::Field CoarseDirac<T>::create_vector() const {
  return Field(geom_, kNSpin, nc_);
}

template <typename T>
double CoarseDirac<T>::flops_per_apply() const {
  // 9 dense NxN complex mat-vecs per site: 8 flops per cmul-add.
  return 9.0 * 8.0 * n_ * n_ * static_cast<double>(geom_->volume());
}

template <typename T>
void CoarseDirac<T>::compress_storage(CoarseStorage storage) {
  if (storage == storage_) return;
  if (storage == CoarseStorage::Native)
    throw std::invalid_argument(
        "compress_storage: native storage cannot be restored once released");
  if (!has_native_storage())
    throw std::logic_error(
        "compress_storage: native storage already released");
  if (storage == CoarseStorage::Single && sizeof(T) == sizeof(float))
    return;  // a float operator's native storage already IS single
  if (storage == CoarseStorage::Half16 && n_ > kMaxBlockDim)
    throw std::invalid_argument(
        "compress_storage: Half16 dequantizes rows into kMaxBlockDim "
        "scratch; N exceeds it");
  const long v = geom_->volume();
  if (storage == CoarseStorage::Single) {
    links_lo_.resize(links_.size());
    for (size_t k = 0; k < links_.size(); ++k)
      links_lo_[k] = Complex<float>(links_[k]);
    diag_lo_.resize(diag_.size());
    for (size_t k = 0; k < diag_.size(); ++k)
      diag_lo_[k] = Complex<float>(diag_[k]);
  } else {
    half_ = HalfCoarseLinks(v, n_);
    for (long site = 0; site < v; ++site) {
      for (int l = 0; l < kNLinks; ++l)
        half_.store_block(site, l, link_data(site, l));
      half_.store_block(site, HalfCoarseLinks::kDiagBlock, diag_data(site));
    }
  }
  if (!diag_inv_.empty()) {
    diag_inv_lo_.resize(diag_inv_.size());
    for (size_t k = 0; k < diag_inv_.size(); ++k)
      diag_inv_lo_[k] = Complex<float>(diag_inv_[k]);
    diag_inv_.clear();
    diag_inv_.shrink_to_fit();
  }
  links_.clear();
  links_.shrink_to_fit();
  diag_.clear();
  diag_.shrink_to_fit();
  storage_ = storage;
}

template <typename T>
HalfCoarseLinks CoarseDirac<T>::snapshot_half_links() const {
  if (storage_ == CoarseStorage::Half16) return half_;
  const long v = geom_->volume();
  HalfCoarseLinks out(v, n_);
  for (long site = 0; site < v; ++site) {
    if (storage_ == CoarseStorage::Native) {
      for (int l = 0; l < kNLinks; ++l)
        out.store_block(site, l, link_data(site, l));
      out.store_block(site, HalfCoarseLinks::kDiagBlock, diag_data(site));
    } else {
      for (int l = 0; l < kNLinks; ++l)
        out.store_block(site, l, link_lo_data(site, l));
      out.store_block(site, HalfCoarseLinks::kDiagBlock, diag_lo_data(site));
    }
  }
  return out;
}

template <typename T>
std::vector<Complex<float>> CoarseDirac<T>::snapshot_diag_inverse() const {
  if (!has_diag_inverse())
    throw std::logic_error(
        "CoarseDirac::snapshot_diag_inverse: compute_diag_inverse() was "
        "never called on this operator");
  if (!diag_inv_lo_.empty()) return diag_inv_lo_;
  std::vector<Complex<float>> out(diag_inv_.size());
  for (size_t k = 0; k < diag_inv_.size(); ++k)
    out[k] = Complex<float>(diag_inv_[k]);
  return out;
}

template <typename T>
void CoarseDirac<T>::install_half_storage(HalfCoarseLinks stencil,
                                          std::vector<Complex<float>> diag_inv) {
  if (stencil.nsites() != geom_->volume() || stencil.block_dim() != n_)
    throw std::invalid_argument(
        "CoarseDirac::install_half_storage: stencil shape mismatch (got " +
        std::to_string(stencil.nsites()) + " sites x N=" +
        std::to_string(stencil.block_dim()) + ", operator has " +
        std::to_string(geom_->volume()) + " x N=" + std::to_string(n_) + ")");
  const size_t want =
      static_cast<size_t>(geom_->volume()) * static_cast<size_t>(n_) * n_;
  if (diag_inv.size() != want)
    throw std::invalid_argument(
        "CoarseDirac::install_half_storage: diag-inverse size mismatch "
        "(got " + std::to_string(diag_inv.size()) + ", want " +
        std::to_string(want) + ")");
  if (n_ > kMaxBlockDim)
    throw std::invalid_argument(
        "CoarseDirac::install_half_storage: Half16 dequantizes rows into "
        "kMaxBlockDim scratch; N exceeds it");
  half_ = std::move(stencil);
  diag_inv_lo_ = std::move(diag_inv);
  links_.clear();
  links_.shrink_to_fit();
  diag_.clear();
  diag_.shrink_to_fit();
  diag_inv_.clear();
  diag_inv_.shrink_to_fit();
  links_lo_.clear();
  links_lo_.shrink_to_fit();
  diag_lo_.clear();
  diag_lo_.shrink_to_fit();
  storage_ = CoarseStorage::Half16;
}

template <typename T>
template <typename Stencil>
void CoarseDirac<T>::apply_with_config_st(Field& out, const Field& in,
                                          const CoarseKernelConfig& config,
                                          const LaunchPolicy& policy,
                                          const Stencil& st) const {
  assert(in.subset() == Subset::Full);
  using TM = typename Stencil::value_type;
  const long v = geom_->volume();
  const int n = n_;
  // Per-item input-site pointers (Listing 2's indexing arithmetic).
  auto site_xin = [&](long site, const Complex<T>** xin) {
    xin[0] = in.site_data(site);
    for (int mu = 0; mu < kNDim; ++mu) {
      xin[1 + 2 * mu] = in.site_data(geom_->neighbor_fwd(site, mu));
      xin[2 + 2 * mu] = in.site_data(geom_->neighbor_bwd(site, mu));
    }
  };
  auto row_value = [&](long site, int r, const Complex<T>* const xin[9],
                       Complex<TM>* scratch) {
    const Complex<TM>* rows[9];
    for (int m = 0; m < 9; ++m)
      rows[m] =
          st.stencil_row(site, m, r, scratch + m * Stencil::kScratchRow);
    return coarse_row_span<T, TM, T>(rows, xin, n, config);
  };
  if (config.strategy >= Strategy::ColorSpin) {
    // One dispatch item per (site, output row): the y thread dimension of
    // Listing 3.  Each item redoes the site indexing, exactly like the
    // fine-grained GPU threads (the Amdahl overhead of section 6.5).
    parallel_for(v * n, policy, [&](long idx) {
      const long site = idx / n;
      const int r = static_cast<int>(idx % n);
      const Complex<T>* xin[9];
      site_xin(site, xin);
      Complex<TM> scratch[9 * Stencil::kScratchRow];
      out.site_data(site)[r] = row_value(site, r, xin, scratch);
    });
  } else {
    // Baseline: one dispatch item per site, rows serial within the item.
    parallel_for(v, policy, [&](long site) {
      const Complex<T>* xin[9];
      site_xin(site, xin);
      Complex<T>* dst = out.site_data(site);
      Complex<TM> scratch[9 * Stencil::kScratchRow];
      for (int r = 0; r < n; ++r) dst[r] = row_value(site, r, xin, scratch);
    });
  }
  if (policy.backend == Backend::SimtModel)
    SimtStats::instance().record_work(
        coarse_op_work(v, n_, config, sim_precision<T>(storage_)));
}

template <typename T>
void CoarseDirac<T>::apply_with_config(
    Field& out, const Field& in, const CoarseKernelConfig& config,
    const LaunchPolicy& policy) const {
  switch (storage_) {
    case CoarseStorage::Single:
      apply_with_config_st(
          out, in, config, policy,
          DenseStencil<float>{links_lo_.data(), diag_lo_.data(), n_});
      break;
    case CoarseStorage::Half16:
      apply_with_config_st(out, in, config, policy, HalfStencil{&half_, n_});
      break;
    default:
      apply_with_config_st(out, in, config, policy,
                           DenseStencil<T>{links_.data(), diag_.data(), n_});
  }
}

template <typename T>
void CoarseDirac<T>::apply(Field& out, const Field& in) const {
  this->count_apply();
  if (!autotune_) {
    apply_with_config(out, in, config_);
    return;
  }
  // Autotune on first use for this (volume, N, precision) shape (section
  // 6.5): a joint sweep over kernel decompositions AND execution backends,
  // cached together under the shape key.  The precision tag keeps a float-
  // or compressed-storage kernel from replaying a config tuned for double
  // (their bytes/flop balance differs).
  auto& cache = TuneCache::instance();
  const std::string key =
      coarse_tune_key(geom_->volume(), n_, precision_tag());
  const auto [best, policy] = cache.tune_joint(
      key, n_, [&](const CoarseKernelConfig& cand, const LaunchPolicy& lp) {
        Timer timer;
        apply_with_config(out, in, cand, lp);
        return timer.seconds();
      });
  apply_with_config(out, in, best, policy);
}

template <typename T>
void CoarseDirac<T>::apply_dagger(Field& out, const Field& in) const {
  // Coarse gamma5-Hermiticity: Mhat^dag = Gamma5 Mhat Gamma5 with
  // Gamma5 = diag(+1_{Nc}, -1_{Nc}) in coarse spin (inherited from the
  // chirality-preserving aggregation).
  if (!dagger_tmp_) dagger_tmp_.emplace(create_vector());
  apply_gamma5(*dagger_tmp_, in);
  apply(out, *dagger_tmp_);
  apply_gamma5(out, out);
}

// Known trade-off: the batched hopping/diag kernels dispatch one item per
// (site, rhs) — matching the native-storage suite's bit-identity contract —
// so under Half16 each stencil row is dequantized once per rhs rather than
// once per site tile (the main batched apply, apply_block_with_config_st,
// does amortize it).  Batched-Schur-heavy configurations that care should
// use Single storage; Half16's payoff is the full coarse apply.
template <typename T>
template <typename Stencil>
void CoarseDirac<T>::apply_hopping_parity_block_st(BlockField& out,
                                                   const BlockField& in,
                                                   int out_parity,
                                                   const Stencil& st) const {
  using TM = typename Stencil::value_type;
  const long hv = geom_->half_volume();
  const int n = n_;
  parallel_for_2d(hv, in.nrhs(), default_policy(), [&](long cb, long kk) {
    const int k = static_cast<int>(kk);
    const long site = geom_->full_index(out_parity, cb);
    long nbr_cb[8];
    Complex<T> xbuf[8 * kMaxBlockDim];
    for (int mu = 0; mu < kNDim; ++mu) {
      nbr_cb[2 * mu] = geom_->cb_index(geom_->neighbor_fwd(site, mu));
      in.gather_site_rhs(nbr_cb[2 * mu], k, xbuf + (2 * mu) * n);
      nbr_cb[2 * mu + 1] = geom_->cb_index(geom_->neighbor_bwd(site, mu));
      in.gather_site_rhs(nbr_cb[2 * mu + 1], k, xbuf + (2 * mu + 1) * n);
    }
    Complex<T> dst[kMaxBlockDim];
    Complex<TM> scratch[Stencil::kScratchRow];
    for (int r = 0; r < n; ++r) {
      Complex<T> acc{};
      for (int m = 0; m < 8; ++m) {
        const Complex<TM>* row = st.link_row(site, m, r, scratch);
        const Complex<T>* x = xbuf + m * n;
        for (int c = 0; c < n; ++c) acc += Complex<T>(row[c]) * x[c];
      }
      dst[r] = acc;
    }
    out.scatter_site_rhs(cb, k, dst);
  });
}

template <typename T>
void CoarseDirac<T>::apply_hopping_parity_block(BlockField& out,
                                                const BlockField& in,
                                                int out_parity) const {
  if (out.nrhs() != in.nrhs())
    throw std::invalid_argument("hopping_parity_block: rhs count mismatch");
  if (n_ > kMaxBlockDim)
    throw std::invalid_argument("coarse block kernel: N exceeds buffer cap");
  switch (storage_) {
    case CoarseStorage::Single:
      apply_hopping_parity_block_st(
          out, in, out_parity,
          DenseStencil<float>{links_lo_.data(), diag_lo_.data(), n_});
      break;
    case CoarseStorage::Half16:
      apply_hopping_parity_block_st(out, in, out_parity,
                                    HalfStencil{&half_, n_});
      break;
    default:
      apply_hopping_parity_block_st(
          out, in, out_parity,
          DenseStencil<T>{links_.data(), diag_.data(), n_});
  }
}

namespace {

/// Shared batched dense diagonal kernel: out = D in per (site, rhs), with
/// row r of D(site) supplied by `row_of(site, r, scratch)` (diagonal or
/// inverse-diagonal rows in any storage format); accumulation in T.
template <typename T, typename TM, typename RowOf>
void block_diag_kernel(BlockSpinor<T>& out, const BlockSpinor<T>& in, int n,
                       int parity, const LatticeGeometry& geom,
                       RowOf&& row_of) {
  parallel_for_2d(in.nsites(), in.nrhs(), default_policy(),
                  [&](long i, long kk) {
    const int k = static_cast<int>(kk);
    const long site = parity >= 0 ? geom.full_index(parity, i) : i;
    Complex<T> src[CoarseDirac<T>::kMaxBlockDim];
    Complex<T> dst[CoarseDirac<T>::kMaxBlockDim];
    Complex<TM> scratch[CoarseDirac<T>::kMaxBlockDim];
    in.gather_site_rhs(i, k, src);
    for (int r = 0; r < n; ++r) {
      Complex<T> acc{};
      const Complex<TM>* row = row_of(site, r, scratch);
      for (int c = 0; c < n; ++c) acc += Complex<T>(row[c]) * src[c];
      dst[r] = acc;
    }
    out.scatter_site_rhs(i, k, dst);
  });
}

/// Single-rhs analog of block_diag_kernel.
template <typename T, typename TM, typename RowOf>
void diag_kernel(ColorSpinorField<T>& out, const ColorSpinorField<T>& in,
                 int n, int parity, const LatticeGeometry& geom,
                 RowOf&& row_of) {
  parallel_for(in.nsites(), [&](long i) {
    const long site = parity >= 0 ? geom.full_index(parity, i) : i;
    const Complex<T>* src = in.site_data(i);
    Complex<T>* dst = out.site_data(i);
    Complex<TM> scratch[CoarseDirac<T>::kMaxBlockDim];
    for (int r = 0; r < n; ++r) {
      Complex<T> acc{};
      const Complex<TM>* row = row_of(site, r, scratch);
      for (int c = 0; c < n; ++c) acc += Complex<T>(row[c]) * src[c];
      dst[r] = acc;
    }
  });
}

}  // namespace

template <typename T>
void CoarseDirac<T>::apply_diag_block(BlockField& out, const BlockField& in,
                                      int parity) const {
  if (out.nrhs() != in.nrhs() || n_ > kMaxBlockDim)
    throw std::invalid_argument("coarse apply_diag_block: bad shape");
  const int n = n_;
  switch (storage_) {
    case CoarseStorage::Single:
      block_diag_kernel<T, float>(
          out, in, n, parity, *geom_,
          [this](long site, int r, Complex<float>*) {
            return diag_lo_data(site) + static_cast<size_t>(r) * n_;
          });
      break;
    case CoarseStorage::Half16:
      block_diag_kernel<T, float>(
          out, in, n, parity, *geom_,
          [this](long site, int r, Complex<float>* scratch) {
            half_.load_row(site, HalfCoarseLinks::kDiagBlock, r, scratch);
            return static_cast<const Complex<float>*>(scratch);
          });
      break;
    default:
      block_diag_kernel<T, T>(out, in, n, parity, *geom_,
                              [this](long site, int r, Complex<T>*) {
                                return diag_data(site) +
                                       static_cast<size_t>(r) * n_;
                              });
  }
}

template <typename T>
void CoarseDirac<T>::apply_diag_inverse_block(BlockField& out,
                                              const BlockField& in,
                                              int parity) const {
  assert(has_diag_inverse());
  if (out.nrhs() != in.nrhs() || n_ > kMaxBlockDim)
    throw std::invalid_argument("coarse apply_diag_inverse_block: bad shape");
  if (storage_ == CoarseStorage::Native) {
    block_diag_kernel<T, T>(out, in, n_, parity, *geom_,
                            [this](long site, int r, Complex<T>*) {
                              return diag_inv_data(site) +
                                     static_cast<size_t>(r) * n_;
                            });
  } else {
    block_diag_kernel<T, float>(
        out, in, n_, parity, *geom_,
        [this](long site, int r, Complex<float>*) {
          return diag_inv_lo_data(site) + static_cast<size_t>(r) * n_;
        });
  }
}

template <typename T>
template <typename Stencil>
void CoarseDirac<T>::apply_hopping_parity_st(Field& out, const Field& in,
                                             int out_parity,
                                             const Stencil& st) const {
  using TM = typename Stencil::value_type;
  const long hv = geom_->half_volume();
  const int n = n_;
  parallel_for(hv, [&](long cb) {
    const long site = geom_->full_index(out_parity, cb);
    const Complex<T>* xin[8];
    for (int mu = 0; mu < kNDim; ++mu) {
      xin[2 * mu] =
          in.site_data(geom_->cb_index(geom_->neighbor_fwd(site, mu)));
      xin[2 * mu + 1] =
          in.site_data(geom_->cb_index(geom_->neighbor_bwd(site, mu)));
    }
    Complex<T>* dst = out.site_data(cb);
    Complex<TM> scratch[Stencil::kScratchRow];
    for (int r = 0; r < n; ++r) {
      Complex<T> acc{};
      for (int m = 0; m < 8; ++m) {
        const Complex<TM>* row = st.link_row(site, m, r, scratch);
        for (int c = 0; c < n; ++c) acc += Complex<T>(row[c]) * xin[m][c];
      }
      dst[r] = acc;
    }
  });
}

template <typename T>
void CoarseDirac<T>::apply_hopping_parity(Field& out, const Field& in,
                                          int out_parity) const {
  assert(out.subset() == (out_parity ? Subset::Odd : Subset::Even));
  switch (storage_) {
    case CoarseStorage::Single:
      apply_hopping_parity_st(
          out, in, out_parity,
          DenseStencil<float>{links_lo_.data(), diag_lo_.data(), n_});
      break;
    case CoarseStorage::Half16:
      apply_hopping_parity_st(out, in, out_parity, HalfStencil{&half_, n_});
      break;
    default:
      apply_hopping_parity_st(
          out, in, out_parity,
          DenseStencil<T>{links_.data(), diag_.data(), n_});
  }
}

template <typename T>
void CoarseDirac<T>::apply_diag(Field& out, const Field& in,
                                int parity) const {
  switch (storage_) {
    case CoarseStorage::Single:
      diag_kernel<T, float>(out, in, n_, parity, *geom_,
                            [this](long site, int r, Complex<float>*) {
                              return diag_lo_data(site) +
                                     static_cast<size_t>(r) * n_;
                            });
      break;
    case CoarseStorage::Half16:
      diag_kernel<T, float>(
          out, in, n_, parity, *geom_,
          [this](long site, int r, Complex<float>* scratch) {
            half_.load_row(site, HalfCoarseLinks::kDiagBlock, r, scratch);
            return static_cast<const Complex<float>*>(scratch);
          });
      break;
    default:
      diag_kernel<T, T>(out, in, n_, parity, *geom_,
                        [this](long site, int r, Complex<T>*) {
                          return diag_data(site) +
                                 static_cast<size_t>(r) * n_;
                        });
  }
}

template <typename T>
void CoarseDirac<T>::compute_diag_inverse() {
  const long v = geom_->volume();
  // The LU runs in T regardless of storage: gather the diagonal block from
  // whatever format is active, invert in working precision, emit into the
  // active format's inverse array (T for Native, float for compressed).
  // Prefer computing the inverse BEFORE compress_storage (what Multigrid
  // and build_coarse_operator do): on an already-compressed operator the
  // native diagonal is gone, so the LU can only see the truncated — for
  // Half16, quantized — blocks, and the inverse amplifies that error by
  // the block's condition number.
  const bool native = storage_ == CoarseStorage::Native;
  if (native)
    diag_inv_.assign(static_cast<size_t>(v) * n_ * n_, Complex<T>{});
  else
    diag_inv_lo_.assign(static_cast<size_t>(v) * n_ * n_, Complex<float>{});
  parallel_for(v, [&](long site) {
    SmallMatrix<T> m(n_, n_);
    if (storage_ == CoarseStorage::Half16) {
      Complex<float> rowbuf[kMaxBlockDim];
      for (int r = 0; r < n_; ++r) {
        half_.load_row(site, HalfCoarseLinks::kDiagBlock, r, rowbuf);
        for (int c = 0; c < n_; ++c) m(r, c) = Complex<T>(rowbuf[c]);
      }
    } else if (storage_ == CoarseStorage::Single) {
      const Complex<float>* d = diag_lo_data(site);
      for (int r = 0; r < n_; ++r)
        for (int c = 0; c < n_; ++c)
          m(r, c) = Complex<T>(d[static_cast<size_t>(r) * n_ + c]);
    } else {
      const Complex<T>* d = diag_data(site);
      for (int r = 0; r < n_; ++r)
        for (int c = 0; c < n_; ++c)
          m(r, c) = d[static_cast<size_t>(r) * n_ + c];
    }
    const LuFactor<T> lu(m);
    const SmallMatrix<T> inv = lu.inverse();
    if (native) {
      Complex<T>* dst = diag_inv_.data() + static_cast<size_t>(site) * n_ * n_;
      for (int r = 0; r < n_; ++r)
        for (int c = 0; c < n_; ++c)
          dst[static_cast<size_t>(r) * n_ + c] = inv(r, c);
    } else {
      Complex<float>* dst =
          diag_inv_lo_.data() + static_cast<size_t>(site) * n_ * n_;
      for (int r = 0; r < n_; ++r)
        for (int c = 0; c < n_; ++c)
          dst[static_cast<size_t>(r) * n_ + c] = Complex<float>(inv(r, c));
    }
  });
}

template <typename T>
void CoarseDirac<T>::apply_diag_inverse(Field& out, const Field& in,
                                        int parity) const {
  assert(has_diag_inverse());
  if (storage_ == CoarseStorage::Native) {
    diag_kernel<T, T>(out, in, n_, parity, *geom_,
                      [this](long site, int r, Complex<T>*) {
                        return diag_inv_data(site) +
                               static_cast<size_t>(r) * n_;
                      });
  } else {
    diag_kernel<T, float>(out, in, n_, parity, *geom_,
                          [this](long site, int r, Complex<float>*) {
                            return diag_inv_lo_data(site) +
                                   static_cast<size_t>(r) * n_;
                          });
  }
}

// --- SchurCoarseOp ----------------------------------------------------------

template <typename T>
SchurCoarseOp<T>::SchurCoarseOp(const CoarseDirac<T>& op)
    : op_(op),
      tmp_odd_(op.geometry(), CoarseDirac<T>::kNSpin, op.ncolor(),
               Subset::Odd),
      tmp_odd2_(op.geometry(), CoarseDirac<T>::kNSpin, op.ncolor(),
                Subset::Odd),
      tmp_even_(op.geometry(), CoarseDirac<T>::kNSpin, op.ncolor(),
                Subset::Even) {
  assert(op.has_diag_inverse());
}

template <typename T>
typename SchurCoarseOp<T>::Field SchurCoarseOp<T>::create_vector() const {
  return Field(op_.geometry(), CoarseDirac<T>::kNSpin, op_.ncolor(),
               Subset::Even);
}

template <typename T>
double SchurCoarseOp<T>::flops_per_apply() const {
  return op_.flops_per_apply();
}

template <typename T>
void SchurCoarseOp<T>::apply(Field& out, const Field& in) const {
  this->count_apply();
  op_.count_apply();  // one Schur apply costs one coarse-operator apply
  // S = X_ee + Y_eo X_oo^{-1} Y_oe sign convention: Mhat = X + Y_hop, so
  // S in = X_ee in - Y_eo X_oo^{-1} Y_oe in ... with Mhat = X + H the Schur
  // complement is X_ee - H_eo X_oo^{-1} H_oe.
  op_.apply_hopping_parity(tmp_odd_, in, /*out_parity=*/1);
  op_.apply_diag_inverse(tmp_odd2_, tmp_odd_, /*parity=*/1);
  op_.apply_hopping_parity(tmp_even_, tmp_odd2_, /*out_parity=*/0);
  op_.apply_diag(out, in, /*parity=*/0);
  for (long k = 0; k < out.size(); ++k) out.data()[k] -= tmp_even_.data()[k];
}

template <typename T>
void SchurCoarseOp<T>::apply_block(BlockField& out, const BlockField& in) const {
  const int nrhs = in.nrhs();
  for (int k = 0; k < nrhs; ++k) {
    this->count_apply();
    op_.count_apply();
  }
  BlockField odd(op_.geometry(), CoarseDirac<T>::kNSpin, op_.ncolor(), nrhs,
                 Subset::Odd);
  BlockField odd2(op_.geometry(), CoarseDirac<T>::kNSpin, op_.ncolor(), nrhs,
                  Subset::Odd);
  BlockField even(op_.geometry(), CoarseDirac<T>::kNSpin, op_.ncolor(), nrhs,
                  Subset::Even);
  op_.apply_hopping_parity_block(odd, in, /*out_parity=*/1);
  op_.apply_diag_inverse_block(odd2, odd, /*parity=*/1);
  op_.apply_hopping_parity_block(even, odd2, /*out_parity=*/0);
  op_.apply_diag_block(out, in, /*parity=*/0);
  for (long k = 0; k < out.size(); ++k) out.data()[k] -= even.data()[k];
}

template <typename T>
void SchurCoarseOp<T>::prepare_block(BlockField& b_hat,
                                     const BlockField& b) const {
  const int nrhs = b.nrhs();
  BlockField b_odd(op_.geometry(), CoarseDirac<T>::kNSpin, op_.ncolor(), nrhs,
                   Subset::Odd);
  extract_parity_block(b_odd, b, 1);
  BlockField odd(op_.geometry(), CoarseDirac<T>::kNSpin, op_.ncolor(), nrhs,
                 Subset::Odd);
  BlockField even(op_.geometry(), CoarseDirac<T>::kNSpin, op_.ncolor(), nrhs,
                  Subset::Even);
  op_.apply_diag_inverse_block(odd, b_odd, /*parity=*/1);
  op_.apply_hopping_parity_block(even, odd, /*out_parity=*/0);
  extract_parity_block(b_hat, b, 0);
  for (long k = 0; k < b_hat.size(); ++k) b_hat.data()[k] -= even.data()[k];
}

template <typename T>
void SchurCoarseOp<T>::reconstruct_block(BlockField& x_full,
                                         const BlockField& x_even,
                                         const BlockField& b) const {
  const int nrhs = b.nrhs();
  // x_o = X_oo^{-1} (b_o - H_oe x_e).
  BlockField odd(op_.geometry(), CoarseDirac<T>::kNSpin, op_.ncolor(), nrhs,
                 Subset::Odd);
  op_.apply_hopping_parity_block(odd, x_even, /*out_parity=*/1);
  BlockField b_odd(op_.geometry(), CoarseDirac<T>::kNSpin, op_.ncolor(), nrhs,
                   Subset::Odd);
  extract_parity_block(b_odd, b, 1);
  for (long k = 0; k < b_odd.size(); ++k) b_odd.data()[k] -= odd.data()[k];
  BlockField odd2(op_.geometry(), CoarseDirac<T>::kNSpin, op_.ncolor(), nrhs,
                  Subset::Odd);
  op_.apply_diag_inverse_block(odd2, b_odd, /*parity=*/1);
  insert_parity_block(x_full, x_even, 0);
  insert_parity_block(x_full, odd2, 1);
}

template <typename T>
void SchurCoarseOp<T>::apply_dagger(Field& out, const Field& in) const {
  if (!dagger_tmp_) dagger_tmp_.emplace(create_vector());
  apply_gamma5(*dagger_tmp_, in);
  apply(out, *dagger_tmp_);
  apply_gamma5(out, out);
}

template <typename T>
void SchurCoarseOp<T>::prepare(Field& b_hat, const Field& b) const {
  assert(b.subset() == Subset::Full);
  Field b_odd(op_.geometry(), CoarseDirac<T>::kNSpin, op_.ncolor(),
              Subset::Odd);
  extract_parity(b_odd, b, 1);
  op_.apply_diag_inverse(tmp_odd_, b_odd, /*parity=*/1);
  op_.apply_hopping_parity(tmp_even_, tmp_odd_, /*out_parity=*/0);
  extract_parity(b_hat, b, 0);
  // Mhat x = X x + H x = b  =>  Schur rhs: b_e - H_eo X_oo^{-1} b_o.
  for (long k = 0; k < b_hat.size(); ++k)
    b_hat.data()[k] -= tmp_even_.data()[k];
}

template <typename T>
void SchurCoarseOp<T>::reconstruct(Field& x_full, const Field& x_even,
                                   const Field& b) const {
  assert(b.subset() == Subset::Full && x_full.subset() == Subset::Full);
  // x_o = X_oo^{-1} (b_o - H_oe x_e).
  op_.apply_hopping_parity(tmp_odd_, x_even, /*out_parity=*/1);
  Field b_odd(op_.geometry(), CoarseDirac<T>::kNSpin, op_.ncolor(),
              Subset::Odd);
  extract_parity(b_odd, b, 1);
  for (long k = 0; k < b_odd.size(); ++k)
    b_odd.data()[k] -= tmp_odd_.data()[k];
  op_.apply_diag_inverse(tmp_odd2_, b_odd, /*parity=*/1);
  insert_parity(x_full, x_even, 0);
  insert_parity(x_full, tmp_odd2_, 1);
}

// --- conversion -------------------------------------------------------------

template <typename To, typename From>
CoarseDirac<To> convert_coarse(const CoarseDirac<From>& in) {
  if (!in.has_native_storage())
    throw std::logic_error(
        "convert_coarse: source operator's native storage was released "
        "(compress_storage); convert before compressing");
  CoarseDirac<To> out(in.geometry(), in.ncolor());
  const int n = in.block_dim();
  const long v = in.geometry()->volume();
  for (long site = 0; site < v; ++site) {
    for (int link = 0; link < CoarseDirac<From>::kNLinks; ++link) {
      const Complex<From>* src = in.link_data(site, link);
      Complex<To>* dst = out.link_data(site, link);
      for (int k = 0; k < n * n; ++k)
        dst[k] = Complex<To>(static_cast<To>(src[k].re),
                             static_cast<To>(src[k].im));
    }
    const Complex<From>* src = in.diag_data(site);
    Complex<To>* dst = out.diag_data(site);
    for (int k = 0; k < n * n; ++k)
      dst[k] = Complex<To>(static_cast<To>(src[k].re),
                           static_cast<To>(src[k].im));
  }
  if (in.has_diag_inverse()) out.compute_diag_inverse();
  return out;
}

template class CoarseDirac<double>;
template class CoarseDirac<float>;
template class SchurCoarseOp<double>;
template class SchurCoarseOp<float>;
template CoarseDirac<float> convert_coarse<float, double>(
    const CoarseDirac<double>&);
template CoarseDirac<double> convert_coarse<double, float>(
    const CoarseDirac<float>&);

}  // namespace qmg
