#include "mg/hierarchy_cache.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>

namespace qmg {

size_t LevelSnapshot::bytes() const {
  size_t b = stencil.allocated_bytes() + diag_inv.size() * sizeof(Complex<float>);
  for (const auto& v : vectors) b += v.allocated_bytes();
  return b;
}

size_t HierarchySnapshot::bytes() const {
  size_t b = 0;
  for (const auto& l : levels) b += l.bytes();
  return b;
}

namespace {

/// Quantize one prolongator column (double hierarchies convert to float
/// first — Half16 cannot hold more precision than float anyway).
template <typename T>
HalfSpinorField quantize_vector(const ColorSpinorField<T>& v) {
  HalfSpinorField h(v.geometry(), v.nspin(), v.ncolor(), v.subset());
  if constexpr (std::is_same_v<T, float>) {
    h.store(v);
  } else {
    h.store(convert<float>(v));
  }
  return h;
}

}  // namespace

template <typename T>
HierarchySnapshot HierarchyCache::snapshot(const Multigrid<T>& mg) {
  HierarchySnapshot snap;
  const int ncoarse = mg.num_levels() - 1;
  snap.levels.resize(static_cast<size_t>(ncoarse));
  for (int l = 0; l < ncoarse; ++l) {
    LevelSnapshot& lvl = snap.levels[static_cast<size_t>(l)];
    for (const auto& v : mg.transfer(l).null_vectors())
      lvl.vectors.push_back(quantize_vector(v));
    lvl.stencil = mg.coarse_op(l).snapshot_half_links();
    lvl.diag_inv = mg.coarse_op(l).snapshot_diag_inverse();
  }
  snap.baseline_contraction = mg.baseline_contraction();
  return snap;
}

template <typename T>
void HierarchyCache::install(const HierarchySnapshot& snap, Multigrid<T>& mg) {
  const int ncoarse = mg.num_levels() - 1;
  if (static_cast<int>(snap.levels.size()) != ncoarse)
    throw std::invalid_argument(
        "HierarchyCache::install: snapshot has " +
        std::to_string(snap.levels.size()) + " coarse levels, hierarchy has " +
        std::to_string(ncoarse));
  for (int l = 0; l < ncoarse; ++l) {
    const LevelSnapshot& lvl = snap.levels[static_cast<size_t>(l)];
    const Transfer<T>& tr = mg.transfer(l);
    std::vector<ColorSpinorField<T>> vecs;
    vecs.reserve(lvl.vectors.size());
    for (const auto& h : lvl.vectors) {
      ColorSpinorField<float> f(tr.map().fine(), tr.fine_nspin(),
                                tr.fine_ncolor());
      h.load(f);
      if constexpr (std::is_same_v<T, float>) {
        vecs.push_back(std::move(f));
      } else {
        vecs.push_back(convert<T>(f));
      }
    }
    mg.install_level_storage(l, vecs, lvl.stencil, lvl.diag_inv);
  }
  mg.set_baseline_contraction(snap.baseline_contraction);
}

template <typename T>
void HierarchyCache::store(const std::string& config_id,
                           const Multigrid<T>& mg) {
  if (capacity_ == 0) return;
  store_snapshot(config_id, snapshot(mg));
}

template <typename T>
bool HierarchyCache::restore(const std::string& config_id, Multigrid<T>& mg) {
  HierarchySnapshot snap;
  if (!lookup(config_id, snap)) return false;
  install(snap, mg);
  return true;
}

void HierarchyCache::store_snapshot(const std::string& config_id,
                                    HierarchySnapshot snap) {
  MutexLock lock(mu_);
  auto it = entries_.find(config_id);
  if (it != entries_.end()) {
    // Replacement refreshes the eviction age.
    order_.erase(std::find(order_.begin(), order_.end(), config_id));
    it->second = std::move(snap);
  } else {
    while (entries_.size() >= capacity_) {
      entries_.erase(order_.front());
      order_.erase(order_.begin());
      ++stats_.evictions;
    }
    entries_.emplace(config_id, std::move(snap));
  }
  order_.push_back(config_id);
  ++stats_.stores;
}

bool HierarchyCache::lookup(const std::string& config_id,
                            HierarchySnapshot& out) {
  MutexLock lock(mu_);
  auto it = entries_.find(config_id);
  if (it == entries_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  out = it->second;
  return true;
}

bool HierarchyCache::contains(const std::string& config_id) const {
  MutexLock lock(mu_);
  return entries_.count(config_id) != 0;
}

void HierarchyCache::clear() {
  MutexLock lock(mu_);
  entries_.clear();
  order_.clear();
}

HierarchyCache::Stats HierarchyCache::stats() const {
  MutexLock lock(mu_);
  Stats s = stats_;
  s.entries = entries_.size();
  s.bytes = 0;
  for (const auto& kv : entries_) s.bytes += kv.second.bytes();
  return s;
}

// Explicit instantiations.
template HierarchySnapshot HierarchyCache::snapshot<double>(
    const Multigrid<double>&);
template HierarchySnapshot HierarchyCache::snapshot<float>(
    const Multigrid<float>&);
template void HierarchyCache::install<double>(const HierarchySnapshot&,
                                              Multigrid<double>&);
template void HierarchyCache::install<float>(const HierarchySnapshot&,
                                             Multigrid<float>&);
template void HierarchyCache::store<double>(const std::string&,
                                            const Multigrid<double>&);
template void HierarchyCache::store<float>(const std::string&,
                                           const Multigrid<float>&);
template bool HierarchyCache::restore<double>(const std::string&,
                                              Multigrid<double>&);
template bool HierarchyCache::restore<float>(const std::string&,
                                             Multigrid<float>&);

}  // namespace qmg
