#pragma once
// SU(3) gauge (link) fields, with optional QUDA-style compressed storage
// (reconstruct-12 / reconstruct-8) that trades reconstruction flops for
// memory bandwidth — paper section 4, strategy (a).

#include <cassert>
#include <vector>

#include "lattice/geometry.h"
#include "linalg/su3.h"

namespace qmg {

enum class Reconstruct { Full18, R12, R8 };

inline const char* to_string(Reconstruct r) {
  switch (r) {
    case Reconstruct::Full18: return "18";
    case Reconstruct::R12: return "12";
    default: return "8";
  }
}

/// Real numbers stored per link for a given reconstruction.
inline int reals_per_link(Reconstruct r) {
  switch (r) {
    case Reconstruct::Full18: return 18;
    case Reconstruct::R12: return 12;
    default: return 8;
  }
}

template <typename T>
class GaugeField {
 public:
  GaugeField() = default;

  explicit GaugeField(GeometryPtr geom) : geom_(std::move(geom)) {
    links_.assign(static_cast<size_t>(kNDim) * geom_->volume(),
                  Su3<T>::identity());
  }

  const GeometryPtr& geometry() const { return geom_; }

  Su3<T>& link(int mu, long site) {
    return links_[static_cast<size_t>(mu) * geom_->volume() + site];
  }
  const Su3<T>& link(int mu, long site) const {
    return links_[static_cast<size_t>(mu) * geom_->volume() + site];
  }

  /// Anisotropy factor multiplying temporal hops (paper Table 1's
  /// anisotropic ensemble); 1 for isotropic lattices.
  void set_anisotropy(T xi) { anisotropy_ = xi; }
  T anisotropy() const { return anisotropy_; }

 private:
  GeometryPtr geom_;
  std::vector<Su3<T>> links_;
  T anisotropy_ = T(1);
};

/// Compressed gauge storage: links are held as 12 or 8 reals and expanded on
/// access.  Exactly the memory-traffic-reduction trade QUDA makes; the
/// reconstruction arithmetic runs on every link fetch.
template <typename T>
class CompressedGaugeField {
 public:
  CompressedGaugeField(const GaugeField<T>& full, Reconstruct rec)
      : geom_(full.geometry()), rec_(rec), anisotropy_(full.anisotropy()) {
    const size_t n = static_cast<size_t>(kNDim) * geom_->volume();
    if (rec_ == Reconstruct::R12) {
      c12_.resize(n);
      for (int mu = 0; mu < kNDim; ++mu)
        for (long s = 0; s < geom_->volume(); ++s)
          c12_[static_cast<size_t>(mu) * geom_->volume() + s] =
              compress12(full.link(mu, s));
    } else {
      assert(rec_ == Reconstruct::R8);
      c8_.resize(n);
      for (int mu = 0; mu < kNDim; ++mu)
        for (long s = 0; s < geom_->volume(); ++s)
          c8_[static_cast<size_t>(mu) * geom_->volume() + s] =
              compress8(full.link(mu, s));
    }
  }

  const GeometryPtr& geometry() const { return geom_; }
  Reconstruct reconstruct() const { return rec_; }
  T anisotropy() const { return anisotropy_; }

  Su3<T> link(int mu, long site) const {
    const size_t i = static_cast<size_t>(mu) * geom_->volume() + site;
    return rec_ == Reconstruct::R12 ? reconstruct12(c12_[i])
                                    : reconstruct8(c8_[i]);
  }

 private:
  GeometryPtr geom_;
  Reconstruct rec_;
  T anisotropy_;
  std::vector<Su3Compressed12<T>> c12_;
  std::vector<Su3Compressed8<T>> c8_;
};

/// Precision conversion for gauge fields (used by mixed-precision solvers).
template <typename To, typename From>
GaugeField<To> convert_gauge(const GaugeField<From>& in) {
  GaugeField<To> out(in.geometry());
  out.set_anisotropy(static_cast<To>(in.anisotropy()));
  for (int mu = 0; mu < kNDim; ++mu)
    for (long s = 0; s < in.geometry()->volume(); ++s) {
      const auto& u = in.link(mu, s);
      auto& v = out.link(mu, s);
      for (int i = 0; i < 9; ++i)
        v.e[i] = Complex<To>(static_cast<To>(u.e[i].re),
                             static_cast<To>(u.e[i].im));
    }
  return out;
}

}  // namespace qmg
