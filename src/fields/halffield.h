#pragma once
// 16-bit fixed-point ("half") storage format, after QUDA (paper section 4,
// strategy (c)).  Each site stores its color-spinor components as int16
// fractions of the per-site max-magnitude, plus one float norm.  Mixed-
// precision solvers use this as the inner/smoother storage precision; the
// quantization error is recovered by outer reliable updates.

#include <cmath>
#include <cstdint>
#include <vector>

#include "fields/colorspinor.h"

namespace qmg {

/// Clamp-safe Q15 quantization shared by every 16-bit fixed-point format
/// (spinor and coarse-link storage).  `scale` is 32767 / max_abs of the
/// normalization block.  lrintf(v * scale) can land outside int16 range for
/// rounding-edge inputs (x = 32767.5 rounds to 32768) and is undefined for
/// non-finite products, and a raw cast then wraps silently; saturate
/// instead, with NaN mapping to 0.
inline std::int16_t quantize_q15(float v, float scale) {
  const float x = v * scale;
  // The comparison is false for NaN, so non-finite x falls through to the
  // saturating branch.
  if (!(std::fabs(x) < 32767.5f))
    return x > 0.0f ? 32767 : (x < 0.0f ? -32767 : 0);
  return static_cast<std::int16_t>(std::lrintf(x));
}

class HalfSpinorField {
 public:
  HalfSpinorField() = default;

  HalfSpinorField(GeometryPtr geom, int nspin, int ncolor,
                  Subset subset = Subset::Full)
      : geom_(std::move(geom)), nspin_(nspin), ncolor_(ncolor),
        subset_(subset) {
    nsites_ = subset == Subset::Full ? geom_->volume() : geom_->half_volume();
    comps_.assign(static_cast<size_t>(nsites_) * nspin_ * ncolor_ * 2, 0);
    norms_.assign(static_cast<size_t>(nsites_), 0.0f);
  }

  long nsites() const { return nsites_; }
  int nspin() const { return nspin_; }
  int ncolor() const { return ncolor_; }
  Subset subset() const { return subset_; }

  /// Bytes per site of this format (components + norm) — used by the
  /// bandwidth model.  Must match the actual allocation,
  /// allocated_bytes() == bytes_per_site() * nsites(), so the bench
  /// arithmetic-intensity numbers are not off by the norm bytes (audited
  /// by the precision test suite).
  size_t bytes_per_site() const {
    return static_cast<size_t>(nspin_) * ncolor_ * 2 * sizeof(std::int16_t) +
           sizeof(float);
  }

  /// What this field actually holds in memory (components + norms).
  size_t allocated_bytes() const {
    return comps_.size() * sizeof(std::int16_t) +
           norms_.size() * sizeof(float);
  }

  /// Quantize a float field into half storage.  The per-site norm is
  /// NaN-safe: non-finite components are ignored when computing the
  /// max-magnitude (so norms_ never holds NaN/inf) and saturate to the
  /// fixed-point edge — or 0 for NaN — when quantized.
  void store(const ColorSpinorField<float>& in) {
    const int dof = nspin_ * ncolor_;
    for (long i = 0; i < nsites_; ++i) {
      float max_abs = 0.0f;
      for (int s = 0; s < nspin_; ++s)
        for (int c = 0; c < ncolor_; ++c) {
          const auto v = in(i, s, c);
          const float ar = std::fabs(v.re);
          const float ai = std::fabs(v.im);
          if (std::isfinite(ar) && ar > max_abs) max_abs = ar;
          if (std::isfinite(ai) && ai > max_abs) max_abs = ai;
        }
      norms_[i] = max_abs;
      const float scale = max_abs > 0.0f ? 32767.0f / max_abs : 0.0f;
      std::int16_t* site = comps_.data() + static_cast<size_t>(i) * dof * 2;
      int k = 0;
      for (int s = 0; s < nspin_; ++s)
        for (int c = 0; c < ncolor_; ++c) {
          // Typed, not auto: quantize_q15 takes float, and an implicit
          // double->float narrowing here would silently halve the
          // quantizer's input precision (lint rule quantizer-narrowing).
          const Complex<float> v = in(i, s, c);
          site[k++] = quantize_q15(v.re, scale);
          site[k++] = quantize_q15(v.im, scale);
        }
    }
  }

  /// Dequantize into a float field.
  void load(ColorSpinorField<float>& out) const {
    const int dof = nspin_ * ncolor_;
    for (long i = 0; i < nsites_; ++i) {
      const float scale = norms_[i] / 32767.0f;
      const std::int16_t* site =
          comps_.data() + static_cast<size_t>(i) * dof * 2;
      int k = 0;
      for (int s = 0; s < nspin_; ++s)
        for (int c = 0; c < ncolor_; ++c) {
          const float re = site[k++] * scale;
          const float im = site[k++] * scale;
          out(i, s, c) = Complex<float>(re, im);
        }
    }
  }

 private:
  GeometryPtr geom_;
  int nspin_ = 0;
  int ncolor_ = 0;
  long nsites_ = 0;
  Subset subset_ = Subset::Full;
  std::vector<std::int16_t> comps_;
  std::vector<float> norms_;
};

/// Round-trip a float field through half storage — models the precision a
/// half-precision smoother actually sees.
inline void quantize_half(ColorSpinorField<float>& x) {
  HalfSpinorField h(x.geometry(), x.nspin(), x.ncolor(), x.subset());
  h.store(x);
  h.load(x);
}

}  // namespace qmg
