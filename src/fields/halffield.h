#pragma once
// 16-bit fixed-point ("half") storage format, after QUDA (paper section 4,
// strategy (c)).  Each site stores its color-spinor components as int16
// fractions of the per-site max-magnitude, plus one float norm.  Mixed-
// precision solvers use this as the inner/smoother storage precision; the
// quantization error is recovered by outer reliable updates.

#include <cmath>
#include <cstdint>
#include <vector>

#include "fields/colorspinor.h"

namespace qmg {

class HalfSpinorField {
 public:
  HalfSpinorField() = default;

  HalfSpinorField(GeometryPtr geom, int nspin, int ncolor,
                  Subset subset = Subset::Full)
      : geom_(std::move(geom)), nspin_(nspin), ncolor_(ncolor),
        subset_(subset) {
    nsites_ = subset == Subset::Full ? geom_->volume() : geom_->half_volume();
    comps_.assign(static_cast<size_t>(nsites_) * nspin_ * ncolor_ * 2, 0);
    norms_.assign(static_cast<size_t>(nsites_), 0.0f);
  }

  long nsites() const { return nsites_; }
  int nspin() const { return nspin_; }
  int ncolor() const { return ncolor_; }
  Subset subset() const { return subset_; }

  /// Bytes per site of this format (components + norm) — used by the
  /// bandwidth model.
  size_t bytes_per_site() const {
    return static_cast<size_t>(nspin_) * ncolor_ * 2 * sizeof(std::int16_t) +
           sizeof(float);
  }

  /// Quantize a float field into half storage.
  void store(const ColorSpinorField<float>& in) {
    const int dof = nspin_ * ncolor_;
    for (long i = 0; i < nsites_; ++i) {
      float max_abs = 0.0f;
      for (int s = 0; s < nspin_; ++s)
        for (int c = 0; c < ncolor_; ++c) {
          const auto v = in(i, s, c);
          max_abs = std::max({max_abs, std::fabs(v.re), std::fabs(v.im)});
        }
      norms_[i] = max_abs;
      const float scale = max_abs > 0.0f ? 32767.0f / max_abs : 0.0f;
      std::int16_t* site = comps_.data() + static_cast<size_t>(i) * dof * 2;
      int k = 0;
      for (int s = 0; s < nspin_; ++s)
        for (int c = 0; c < ncolor_; ++c) {
          const auto v = in(i, s, c);
          site[k++] = static_cast<std::int16_t>(std::lrintf(v.re * scale));
          site[k++] = static_cast<std::int16_t>(std::lrintf(v.im * scale));
        }
    }
  }

  /// Dequantize into a float field.
  void load(ColorSpinorField<float>& out) const {
    const int dof = nspin_ * ncolor_;
    for (long i = 0; i < nsites_; ++i) {
      const float scale = norms_[i] / 32767.0f;
      const std::int16_t* site =
          comps_.data() + static_cast<size_t>(i) * dof * 2;
      int k = 0;
      for (int s = 0; s < nspin_; ++s)
        for (int c = 0; c < ncolor_; ++c) {
          const float re = site[k++] * scale;
          const float im = site[k++] * scale;
          out(i, s, c) = Complex<float>(re, im);
        }
    }
  }

 private:
  GeometryPtr geom_;
  int nspin_ = 0;
  int ncolor_ = 0;
  long nsites_ = 0;
  Subset subset_ = Subset::Full;
  std::vector<std::int16_t> comps_;
  std::vector<float> norms_;
};

/// Round-trip a float field through half storage — models the precision a
/// half-precision smoother actually sees.
inline void quantize_half(ColorSpinorField<float>& x) {
  HalfSpinorField h(x.geometry(), x.nspin(), x.ncolor(), x.subset());
  h.store(x);
  h.load(x);
}

}  // namespace qmg
