#pragma once
// Block spinor: N right-hand sides stored as ONE field with an
// rhs-contiguous site layout (paper section 9's multiple-right-hand-side
// reformulation, made first-class).
//
// Layout: index = (site * site_dof + d) * nrhs + k — "SoA over rhs".  For a
// fixed (site, spin, color) the N rhs values are adjacent in memory, so a
// kernel that loads a stencil matrix once and streams all N vectors through
// it walks unit-stride over the rhs axis (the vectorizable/coalesced axis),
// while the per-site blocks of a single rhs stay a fixed stride apart.
// This is the storage the 2D (site x rhs) dispatch index space
// (parallel/dispatch.h) iterates.
//
// A BlockSpinor is convertible to and from a std::vector of ordinary
// ColorSpinorFields (pack/unpack are exact element copies), so batched
// kernels are bit-identical to N single-rhs applies whenever their per-rhs
// arithmetic is.

#include <cassert>
#include <stdexcept>
#include <vector>

#include "fields/colorspinor.h"
#include "linalg/aligned.h"

namespace qmg {

template <typename T>
class BlockSpinor {
 public:
  using value_type = Complex<T>;
  using Field = ColorSpinorField<T>;

  BlockSpinor() = default;

  BlockSpinor(GeometryPtr geom, int nspin, int ncolor, int nrhs,
              Subset subset = Subset::Full)
      : geom_(std::move(geom)),
        nspin_(nspin),
        ncolor_(ncolor),
        nrhs_(nrhs),
        subset_(subset) {
    if (nrhs_ <= 0) throw std::invalid_argument("block spinor needs nrhs > 0");
    nsites_ = subset == Subset::Full ? geom_->volume() : geom_->half_volume();
    data_.assign(static_cast<size_t>(nsites_) * nspin_ * ncolor_ * nrhs_,
                 value_type{});
    assert(data_.empty() || is_field_aligned(data_.data()));
  }

  /// A new zero block with the same shape as this one.
  BlockSpinor similar() const {
    return BlockSpinor(geom_, nspin_, ncolor_, nrhs_, subset_);
  }

  const GeometryPtr& geometry() const { return geom_; }
  int nspin() const { return nspin_; }
  int ncolor() const { return ncolor_; }
  int nrhs() const { return nrhs_; }
  int site_dof() const { return nspin_ * ncolor_; }
  long nsites() const { return nsites_; }
  /// Total complex elements across all rhs.
  long size() const { return static_cast<long>(data_.size()); }
  /// Complex elements of one rhs (the per-rhs reduction length).
  long rhs_size() const { return nsites_ * site_dof(); }
  Subset subset() const { return subset_; }

  size_t linear_index(long site, int s, int c, int k) const {
    return ((static_cast<size_t>(site) * nspin_ + s) * ncolor_ + c) * nrhs_ +
           k;
  }

  value_type& operator()(long site, int s, int c, int k) {
    return data_[linear_index(site, s, c, k)];
  }
  const value_type& operator()(long site, int s, int c, int k) const {
    return data_[linear_index(site, s, c, k)];
  }

  /// Contiguous per-site block of site_dof() x nrhs values, rhs innermost.
  value_type* site_data(long site) {
    return data_.data() + static_cast<size_t>(site) * site_dof() * nrhs_;
  }
  const value_type* site_data(long site) const {
    return data_.data() + static_cast<size_t>(site) * site_dof() * nrhs_;
  }

  value_type* data() { return data_.data(); }
  const value_type* data() const { return data_.data(); }

  /// Element i (flat per-rhs index over site-major dof order) of rhs k:
  /// the block analog of field.data()[i], used by the block BLAS so that
  /// per-rhs arithmetic order matches the single-field kernels exactly.
  value_type& at(long i, int k) {
    return data_[static_cast<size_t>(i) * nrhs_ + k];
  }
  const value_type& at(long i, int k) const {
    return data_[static_cast<size_t>(i) * nrhs_ + k];
  }

  /// Gather one site's dof vector of rhs k into a contiguous buffer (the
  /// per-rhs view a single-rhs kernel expects).  buf must hold site_dof()
  /// values.  Exact copies: a kernel fed gathered buffers is bit-identical
  /// to the single-field kernel.
  void gather_site_rhs(long site, int k, value_type* buf) const {
    const value_type* p = site_data(site) + k;
    const int dof = site_dof();
    for (int d = 0; d < dof; ++d) buf[d] = p[static_cast<size_t>(d) * nrhs_];
  }
  /// Scatter a contiguous per-rhs site vector back into rhs slot k.
  void scatter_site_rhs(long site, int k, const value_type* buf) {
    value_type* p = site_data(site) + k;
    const int dof = site_dof();
    for (int d = 0; d < dof; ++d) p[static_cast<size_t>(d) * nrhs_] = buf[d];
  }

  /// Copy rhs k out into an ordinary field of the same shape.
  void extract_rhs(Field& out, int k) const {
    check_rhs(k);
    check_shape(out);
    for (long i = 0; i < rhs_size(); ++i) out.data()[i] = at(i, k);
  }
  Field extract_rhs(int k) const {
    Field out(geom_, nspin_, ncolor_, subset_);
    extract_rhs(out, k);
    return out;
  }

  /// Copy an ordinary field into rhs slot k.
  void insert_rhs(const Field& in, int k) {
    check_rhs(k);
    check_shape(in);
    for (long i = 0; i < rhs_size(); ++i) at(i, k) = in.data()[i];
  }

  void check_rhs(int k) const {
    if (k < 0 || k >= nrhs_)
      throw std::invalid_argument("block spinor: rhs index out of range");
  }
  void check_shape(const Field& f) const {
    if (f.geometry() != geom_ || f.nspin() != nspin_ ||
        f.ncolor() != ncolor_ || f.subset() != subset_ ||
        f.order() != FieldOrder::SiteMajor)
      throw std::invalid_argument(
          "block spinor: field has mismatched shape/subset/order");
  }

 private:
  GeometryPtr geom_;
  int nspin_ = 0;
  int ncolor_ = 0;
  int nrhs_ = 0;
  long nsites_ = 0;
  Subset subset_ = Subset::Full;
  // Aligned so rhs-axis pack loads start on a cache-line boundary
  // (linalg/aligned.h).
  aligned_vector<value_type> data_;
};

/// Pack N same-shaped fields into one block spinor (exact copies).
template <typename T>
BlockSpinor<T> pack_block(const std::vector<ColorSpinorField<T>>& fields) {
  if (fields.empty())
    throw std::invalid_argument("pack_block: need at least one field");
  const auto& f0 = fields.front();
  BlockSpinor<T> block(f0.geometry(), f0.nspin(), f0.ncolor(),
                       static_cast<int>(fields.size()), f0.subset());
  for (int k = 0; k < block.nrhs(); ++k)
    block.insert_rhs(fields[static_cast<size_t>(k)], k);
  return block;
}

/// Unpack a block spinor back into N ordinary fields (exact copies).
template <typename T>
void unpack_block(std::vector<ColorSpinorField<T>>& fields,
                  const BlockSpinor<T>& block) {
  if (static_cast<int>(fields.size()) != block.nrhs())
    throw std::invalid_argument("unpack_block: field count != nrhs");
  for (int k = 0; k < block.nrhs(); ++k)
    block.extract_rhs(fields[static_cast<size_t>(k)], k);
}

/// Copy the given parity's sites of a full block into a parity block
/// (block analog of extract_parity; exact element copies).
template <typename T>
void extract_parity_block(BlockSpinor<T>& out, const BlockSpinor<T>& in,
                          int parity) {
  if (in.subset() != Subset::Full ||
      out.subset() != (parity ? Subset::Odd : Subset::Even) ||
      out.nrhs() != in.nrhs())
    throw std::invalid_argument("extract_parity_block: shape mismatch");
  const auto& geom = *in.geometry();
  for (long cb = 0; cb < geom.half_volume(); ++cb) {
    const long full = geom.full_index(parity, cb);
    for (int s = 0; s < in.nspin(); ++s)
      for (int c = 0; c < in.ncolor(); ++c)
        for (int k = 0; k < in.nrhs(); ++k)
          out(cb, s, c, k) = in(full, s, c, k);
  }
}

/// Scatter a parity block back into the corresponding sites of a full block.
template <typename T>
void insert_parity_block(BlockSpinor<T>& out, const BlockSpinor<T>& in,
                         int parity) {
  if (out.subset() != Subset::Full ||
      in.subset() != (parity ? Subset::Odd : Subset::Even) ||
      out.nrhs() != in.nrhs())
    throw std::invalid_argument("insert_parity_block: shape mismatch");
  const auto& geom = *out.geometry();
  for (long cb = 0; cb < geom.half_volume(); ++cb) {
    const long full = geom.full_index(parity, cb);
    for (int s = 0; s < out.nspin(); ++s)
      for (int c = 0; c < out.ncolor(); ++c)
        for (int k = 0; k < out.nrhs(); ++k)
          out(full, s, c, k) = in(cb, s, c, k);
  }
}

/// Precision conversion of a whole block (for mixed-precision block solves).
template <typename To, typename From>
BlockSpinor<To> convert_block(const BlockSpinor<From>& in) {
  BlockSpinor<To> out(in.geometry(), in.nspin(), in.ncolor(), in.nrhs(),
                      in.subset());
  for (long i = 0; i < in.size(); ++i)
    out.data()[i] = Complex<To>(static_cast<To>(in.data()[i].re),
                                static_cast<To>(in.data()[i].im));
  return out;
}

template <typename To, typename From>
void convert_block_into(BlockSpinor<To>& out, const BlockSpinor<From>& in) {
  if (out.size() != in.size() || out.nrhs() != in.nrhs())
    throw std::invalid_argument("convert_block_into: shape mismatch");
  for (long i = 0; i < in.size(); ++i)
    out.data()[i] = Complex<To>(static_cast<To>(in.data()[i].re),
                                static_cast<To>(in.data()[i].im));
}

}  // namespace qmg
