#pragma once
// Clover field: the Sheikholeslami-Wohlert improvement term A_x of Eq. 2.
//
// In the chiral gamma basis, sigma_{mu nu} is block diagonal in chirality, so
// A_x decomposes into two Hermitian 6x6 blocks per site (2 spins x 3 colors
// each).  We store the blocks and, when red-black preconditioning is used,
// their inverses (needed for A_oo^{-1} in the Schur complement).

#include <vector>

#include "lattice/geometry.h"
#include "linalg/matrix.h"
#include "linalg/smallmat.h"

namespace qmg {

template <typename T>
class CloverField {
 public:
  static constexpr int kBlockDim = 6;  // 2 spins x 3 colors per chirality
  using Block = Matrix<T, kBlockDim, kBlockDim>;

  CloverField() = default;

  explicit CloverField(GeometryPtr geom) : geom_(std::move(geom)) {
    blocks_.assign(2 * static_cast<size_t>(geom_->volume()), Block{});
  }

  const GeometryPtr& geometry() const { return geom_; }
  bool has_inverse() const { return !inverse_.empty(); }

  /// Chirality block ch in {0 (spins 0,1), 1 (spins 2,3)} at a site.
  Block& block(long site, int ch) {
    return blocks_[2 * static_cast<size_t>(site) + ch];
  }
  const Block& block(long site, int ch) const {
    return blocks_[2 * static_cast<size_t>(site) + ch];
  }

  const Block& inverse_block(long site, int ch) const {
    return inverse_[2 * static_cast<size_t>(site) + ch];
  }

  /// Precompute (diag + A)^{-1} per site where diag = 4 + m (the full
  /// even/odd diagonal operator of the Schur complement).
  void compute_inverse(T diag_shift) {
    inverse_.assign(blocks_.size(), Block{});
    for (size_t i = 0; i < blocks_.size(); ++i) {
      SmallMatrix<T> m(kBlockDim, kBlockDim);
      for (int r = 0; r < kBlockDim; ++r)
        for (int c = 0; c < kBlockDim; ++c) m(r, c) = blocks_[i](r, c);
      for (int r = 0; r < kBlockDim; ++r) m(r, r) += Complex<T>(diag_shift);
      const LuFactor<T> lu(m);
      const SmallMatrix<T> inv = lu.inverse();
      for (int r = 0; r < kBlockDim; ++r)
        for (int c = 0; c < kBlockDim; ++c) inverse_[i](r, c) = inv(r, c);
    }
    inverse_shift_ = diag_shift;
  }

  T inverse_shift() const { return inverse_shift_; }

 private:
  GeometryPtr geom_;
  std::vector<Block> blocks_;
  std::vector<Block> inverse_;  // (diag_shift + A)^{-1}
  T inverse_shift_ = T(0);
};

/// Precision conversion.
template <typename To, typename From>
CloverField<To> convert_clover(const CloverField<From>& in) {
  CloverField<To> out(in.geometry());
  for (long s = 0; s < in.geometry()->volume(); ++s)
    for (int ch = 0; ch < 2; ++ch) {
      const auto& b = in.block(s, ch);
      auto& o = out.block(s, ch);
      for (int i = 0; i < CloverField<From>::kBlockDim *
                               CloverField<From>::kBlockDim; ++i)
        o.e[i] = Complex<To>(static_cast<To>(b.e[i].re),
                             static_cast<To>(b.e[i].im));
    }
  if (in.has_inverse()) out.compute_inverse(static_cast<To>(in.inverse_shift()));
  return out;
}

}  // namespace qmg
