#pragma once
// Execution/memory location abstraction (paper section 5).
//
// On the real heterogeneous system fields live either in host (CPU) or
// device (GPU) memory, connected by PCIe.  Here both locations are host
// RAM, but the abstraction is preserved: algorithms are written against
// generic fields, each field knows its location, and migrations are
// explicit and metered.  The TransferLedger stands in for the PCIe bus —
// the cluster model uses its byte counts to charge transfer time.

#include <cstdint>

namespace qmg {

enum class Location { Host, Device };

inline const char* to_string(Location l) {
  return l == Location::Host ? "host" : "device";
}

/// Process-global accounting of simulated host<->device traffic.
class TransferLedger {
 public:
  void record(Location from, Location to, std::uint64_t bytes) {
    if (from == to) return;
    if (to == Location::Device)
      h2d_bytes_ += bytes;
    else
      d2h_bytes_ += bytes;
    ++transfers_;
  }

  std::uint64_t h2d_bytes() const { return h2d_bytes_; }
  std::uint64_t d2h_bytes() const { return d2h_bytes_; }
  std::uint64_t transfers() const { return transfers_; }
  void reset() { h2d_bytes_ = d2h_bytes_ = transfers_ = 0; }

 private:
  std::uint64_t h2d_bytes_ = 0;
  std::uint64_t d2h_bytes_ = 0;
  std::uint64_t transfers_ = 0;
};

TransferLedger& transfer_ledger();

}  // namespace qmg
