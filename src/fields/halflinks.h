#pragma once
// 16-bit fixed-point storage of the coarse stencil (paper section 4,
// strategy (c), applied to the coarse operator): each of a site's nine
// dense N x N complex blocks — 8 hop links plus the diagonal — is stored as
// int16 fractions of that block's max magnitude, plus one float scale per
// block.  This is the HalfSpinorField format lifted to link blocks: 4 bytes
// per complex element instead of 16 (double) or 8 (float), so a coarse
// apply that reads this storage moves ~4x fewer stencil bytes than the
// double-precision operator while the kernels accumulate in full precision
// (mg/coarse_row.h's storage-vs-accumulation split).
//
// Rows are dequantized on the fly into a per-item scratch buffer
// (CoarseDirac's Half16 apply path), so the hot loops still see contiguous
// Complex<float> rows; only the memory traffic shrinks.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "fields/halffield.h"
#include "linalg/complex.h"

namespace qmg {

class HalfCoarseLinks {
 public:
  /// 8 hop links (2*mu + dir) at block index 0..7, diagonal at kDiagBlock.
  static constexpr int kBlocksPerSite = 9;
  static constexpr int kDiagBlock = 8;

  HalfCoarseLinks() = default;

  HalfCoarseLinks(long nsites, int block_dim)
      : nsites_(nsites), n_(block_dim) {
    comps_.assign(static_cast<size_t>(nsites_) * kBlocksPerSite * n_ * n_ * 2,
                  0);
    scales_.assign(static_cast<size_t>(nsites_) * kBlocksPerSite, 0.0f);
  }

  long nsites() const { return nsites_; }
  int block_dim() const { return n_; }
  bool empty() const { return comps_.empty(); }

  /// Bytes per site (9 quantized blocks + 9 scales) — the bandwidth model's
  /// input.  Audited against allocated_bytes() by the precision tests so
  /// the arithmetic-intensity numbers are not off by the scale bytes.
  size_t bytes_per_site() const {
    return static_cast<size_t>(kBlocksPerSite) * n_ * n_ * 2 *
               sizeof(std::int16_t) +
           kBlocksPerSite * sizeof(float);
  }

  size_t allocated_bytes() const {
    return comps_.size() * sizeof(std::int16_t) +
           scales_.size() * sizeof(float);
  }

  /// Quantize one N x N block.  Like HalfSpinorField::store, the per-block
  /// scale is NaN-safe (non-finite elements do not poison it) and every
  /// element goes through the saturating quantize_q15.
  template <typename T>
  void store_block(long site, int blk, const Complex<T>* src) {
    const size_t nn = static_cast<size_t>(n_) * n_;
    float max_abs = 0.0f;
    for (size_t k = 0; k < nn; ++k) {
      const float ar = std::fabs(static_cast<float>(src[k].re));
      const float ai = std::fabs(static_cast<float>(src[k].im));
      if (std::isfinite(ar) && ar > max_abs) max_abs = ar;
      if (std::isfinite(ai) && ai > max_abs) max_abs = ai;
    }
    const size_t b = block_index(site, blk);
    scales_[b] = max_abs;
    const float scale = max_abs > 0.0f ? 32767.0f / max_abs : 0.0f;
    std::int16_t* dst = comps_.data() + b * nn * 2;
    for (size_t k = 0; k < nn; ++k) {
      dst[2 * k] = quantize_q15(static_cast<float>(src[k].re), scale);
      dst[2 * k + 1] = quantize_q15(static_cast<float>(src[k].im), scale);
    }
  }

  /// Dequantize row r of a block into `out` (n_ complex values).
  void load_row(long site, int blk, int r, Complex<float>* out) const {
    const size_t b = block_index(site, blk);
    const float scale = scales_[b] / 32767.0f;
    const std::int16_t* src =
        comps_.data() + (b * n_ + r) * static_cast<size_t>(n_) * 2;
    for (int c = 0; c < n_; ++c)
      out[c] = Complex<float>(src[2 * c] * scale, src[2 * c + 1] * scale);
  }

  /// Dequantize a whole block (n_ x n_ values, row-major).
  void load_block(long site, int blk, Complex<float>* out) const {
    for (int r = 0; r < n_; ++r)
      load_row(site, blk, r, out + static_cast<size_t>(r) * n_);
  }

  /// Raw copy of one site's nine quantized blocks and scales from another
  /// HalfCoarseLinks of the same block dimension — the rank-split path of
  /// DistributedCoarseOp.  No dequantize/requantize round trip, so every
  /// per-rank row dequantizes bit-identically to the global one.
  void copy_site(long dst_site, const HalfCoarseLinks& src, long src_site) {
    const size_t nn2 = static_cast<size_t>(n_) * n_ * 2;
    for (int blk = 0; blk < kBlocksPerSite; ++blk) {
      const size_t bd = block_index(dst_site, blk);
      const size_t bs = src.block_index(src_site, blk);
      scales_[bd] = src.scales_[bs];
      std::copy(src.comps_.begin() + static_cast<long>(bs * nn2),
                src.comps_.begin() + static_cast<long>((bs + 1) * nn2),
                comps_.begin() + static_cast<long>(bd * nn2));
    }
  }

 private:
  size_t block_index(long site, int blk) const {
    return static_cast<size_t>(site) * kBlocksPerSite + blk;
  }

  long nsites_ = 0;
  int n_ = 0;
  std::vector<std::int16_t> comps_;
  std::vector<float> scales_;
};

}  // namespace qmg
