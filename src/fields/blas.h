#pragma once
// Field BLAS, written in the single-code-path style of paper Listing 1:
// each operation is a small per-element body ("__device__ __host__"
// function) launched through the unified dispatch layer
// (parallel/dispatch.h).  Dispatch follows the field's Location: Device
// fields route through the SimtModel backend (simulated CUDA launch
// order, recorded in SimtStats), Host fields through the process default
// policy (Threaded unless retuned).

#include <cassert>
#include <cmath>

#include "fields/colorspinor.h"
#include "parallel/dispatch.h"

namespace qmg {
namespace blas {

namespace detail {

/// Launch policy for a field's location.  Streaming BLAS bodies are cheap,
/// so the Threaded path only engages above a grain worth waking the pool.
inline LaunchPolicy policy_for(Location loc) {
  if (loc == Location::Device) {
    LaunchPolicy p;
    p.backend = Backend::SimtModel;
    return p;
  }
  LaunchPolicy p = default_policy();
  if (p.grain < 1024) p.grain = 1024;
  return p;
}

/// Run `body(i)` for i in [0, n) on the field's location.
template <typename Body>
void for_each(Location loc, long n, Body&& body) {
  parallel_for(n, policy_for(loc), body);
}

}  // namespace detail

template <typename T>
void zero(ColorSpinorField<T>& x) {
  detail::for_each(x.location(), x.size(),
                   [&](long i) { x.data()[i] = Complex<T>{}; });
}

template <typename T>
void copy(ColorSpinorField<T>& y, const ColorSpinorField<T>& x) {
  assert(y.size() == x.size());
  detail::for_each(x.location(), x.size(),
                   [&](long i) { y.data()[i] = x.data()[i]; });
}

/// y += a*x.
template <typename T>
void axpy(T a, const ColorSpinorField<T>& x, ColorSpinorField<T>& y) {
  assert(y.size() == x.size());
  detail::for_each(x.location(), x.size(),
                   [&](long i) { y.data()[i] += a * x.data()[i]; });
}

/// y = x + a*y.
template <typename T>
void xpay(const ColorSpinorField<T>& x, T a, ColorSpinorField<T>& y) {
  assert(y.size() == x.size());
  detail::for_each(x.location(), x.size(), [&](long i) {
    y.data()[i] = x.data()[i] + a * y.data()[i];
  });
}

/// y = a*x + b*y.
template <typename T>
void axpby(T a, const ColorSpinorField<T>& x, T b, ColorSpinorField<T>& y) {
  assert(y.size() == x.size());
  detail::for_each(x.location(), x.size(), [&](long i) {
    y.data()[i] = a * x.data()[i] + b * y.data()[i];
  });
}

/// y += a*x (complex a).
template <typename T>
void caxpy(Complex<T> a, const ColorSpinorField<T>& x,
           ColorSpinorField<T>& y) {
  assert(y.size() == x.size());
  detail::for_each(x.location(), x.size(),
                   [&](long i) { y.data()[i] += a * x.data()[i]; });
}

/// y = x + a*y (complex a).
template <typename T>
void cxpay(const ColorSpinorField<T>& x, Complex<T> a,
           ColorSpinorField<T>& y) {
  assert(y.size() == x.size());
  detail::for_each(x.location(), x.size(), [&](long i) {
    y.data()[i] = x.data()[i] + a * y.data()[i];
  });
}

template <typename T>
void scale(T a, ColorSpinorField<T>& x) {
  detail::for_each(x.location(), x.size(),
                   [&](long i) { x.data()[i] *= a; });
}

// Reductions.  These are the global-synchronization points whose log(N)
// network cost dominates the coarsest MG level at scale (paper Fig. 4).

template <typename T>
double norm2(const ColorSpinorField<T>& x) {
  return parallel_reduce<double>(
      x.size(), detail::policy_for(x.location()),
      [&](long i) { return qmg::norm2(x.data()[i]); });
}

/// <x, y> = sum_i conj(x_i) y_i.
template <typename T>
complexd cdot(const ColorSpinorField<T>& x, const ColorSpinorField<T>& y) {
  assert(y.size() == x.size());
  return parallel_reduce<complexd>(
      x.size(), detail::policy_for(x.location()), [&](long i) {
        const auto d = conj_mul(x.data()[i], y.data()[i]);
        return complexd{d.re, d.im};
      });
}

template <typename T>
double rdot(const ColorSpinorField<T>& x, const ColorSpinorField<T>& y) {
  return cdot(x, y).re;
}

}  // namespace blas
}  // namespace qmg
