#pragma once
// Field BLAS, written in the single-code-path style of paper Listing 1:
// each operation is a small per-element body ("__device__ __host__"
// function) launched through the unified dispatch layer
// (parallel/dispatch.h).  Dispatch follows the field's Location: Device
// fields route through the SimtModel backend (simulated CUDA launch
// order, recorded in SimtStats), Host fields through the process default
// policy (Threaded unless retuned).
//
// When the active policy requests SIMD lanes (Backend::Simd, or Threaded
// with simd_width > 1 — see effective_simd_width in parallel/dispatch.h),
// the hot kernels run width-aware paths built on the linalg/simd.h packs:
//
//   single-rhs streaming ops  — W-aligned site ranges: the op's scalar
//       loop runs inline over each range (ONE lanes_for_each range call
//       per thread partition), with a scalar tail for n % W.  Measured
//       against explicit packs, the SoA deinterleave (and the defeated SLP
//       of a hand-written interleaved form) made pack temporaries SLOWER
//       than the autovectorized scalar tree on these pure streaming loops;
//       and routing the same scalar body through a per-group callback cost
//       ~2x again (the vectorizer's alias versioning does not survive a
//       call boundary per W elements).  The inline range loop matches the
//       raw loop exactly — and bit-identity is trivial, since the body IS
//       the scalar expression.
//   single-rhs reductions     — chunk lanes: the fixed reduction chunks of
//       parallel_reduce advance in lockstep, one chunk per lane, so every
//       chunk partial is still its plain ascending-i sum and the combined
//       value is bit-identical across backends, widths and thread counts.
//   block (multi-rhs) updates — the per-(i, k) rhs_active mask test is
//       what keeps the scalar block walk ~2x off the single-rhs ops (it
//       blocks vectorization of the unit-stride rhs axis), so the width
//       path hoists the mask ONCE into maximal [kb, ke) runs of active rhs
//       and streams each run with a dense inner loop.  Per-rhs arithmetic
//       is untouched, so per-rhs bit-identity is by construction.
//   block (multi-rhs) reductions — rhs-axis lanes: W consecutive rhs per
//       cpack (the unit-stride BlockSpinor axis) with per-rhs register
//       accumulators; per-rhs accumulation order is unchanged.

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "fields/blockspinor.h"
#include "fields/colorspinor.h"
#include "linalg/simd.h"
#include "parallel/dispatch.h"

namespace qmg {
namespace blas {

namespace detail {

/// Launch policy for a field's location.  Streaming BLAS bodies are cheap,
/// so the Threaded path only engages above a grain worth waking the pool.
inline LaunchPolicy policy_for(Location loc) {
  if (loc == Location::Device) {
    LaunchPolicy p;
    p.backend = Backend::SimtModel;
    return p;
  }
  LaunchPolicy p = default_policy();
  if (p.grain < 1024) p.grain = 1024;
  return p;
}

/// Run `body(i)` for i in [0, n) on the field's location.
template <typename Body>
void for_each(Location loc, long n, Body&& body) {
  parallel_for(n, policy_for(loc), body);
}

/// Site-axis range driver for the streaming ops: range_body(b, e) handles
/// elements [b, e) with W-aligned bounds, scalar_body(i) one element of
/// the n % W tail.  range_body is called ONCE per thread partition (once
/// total off the pool), so the op's element loop lives inline in its own
/// lambda — measured, the identical loop issued through a callback per
/// W-element group ran ~2x slower, because the vectorizer's runtime alias
/// versioning does not survive a call boundary that tight.  The Threaded
/// engage test is the same element-count threshold parallel_for applies.
template <int W, typename RangeBody, typename ScalarBody>
void lanes_for_each(long n, const LaunchPolicy& policy, RangeBody&& range_body,
                    ScalarBody&& scalar_body) {
  const long groups = n / W;
  if (policy.backend == Backend::Threaded) {
    ThreadPool& pool = ThreadPool::instance();
    const int nt = pool.num_threads();
    if (nt > 1 && !ThreadPool::in_parallel_region() &&
        n >= nt * std::max<long>(1, policy.grain)) {
      pool.run([&](int t) {
        const long gb = groups * t / nt;
        const long ge = groups * (t + 1) / nt;
        if (gb < ge) range_body(gb * W, ge * W);
      });
      for (long i = groups * W; i < n; ++i) scalar_body(i);
      return;
    }
  }
  if (groups > 0) range_body(0, groups * W);
  for (long i = groups * W; i < n; ++i) scalar_body(i);
}

/// Chunk-group driver for the width-aware reductions: iterates groups of W
/// consecutive reduction chunks with the SAME threading decision as
/// parallel_reduce (on n, the element count) so Threaded engages for the
/// same problem sizes it always did.
template <typename Fn>
void chunk_group_for(long n, long ngroups, const LaunchPolicy& policy,
                     Fn&& fn) {
  if (policy.backend == Backend::Threaded) {
    ThreadPool& pool = ThreadPool::instance();
    const int nt = pool.num_threads();
    if (nt > 1 && !ThreadPool::in_parallel_region() &&
        n >= nt * std::max<long>(1, policy.grain)) {
      pool.run([&](int w) {
        const long gb = ngroups * w / nt;
        const long ge = ngroups * (w + 1) / nt;
        for (long g = gb; g < ge; ++g) fn(g);
      });
      return;
    }
  }
  for (long g = 0; g < ngroups; ++g) fn(g);
}

/// The fixed pairwise combine tree of parallel_reduce, over a partials
/// array (possibly strided per rhs: partials[c*stride + k]).
template <typename V>
void combine_tree(std::vector<V>& partials, long nchunks, int stride) {
  for (long span = 1; span < nchunks; span *= 2)
    for (long i = 0; i + span < nchunks; i += 2 * span)
      for (int k = 0; k < stride; ++k)
        partials[static_cast<size_t>(i * stride + k)] +=
            partials[static_cast<size_t>((i + span) * stride + k)];
}

/// norm2 with chunk lanes: chunk c0+j accumulates in lane j; every chunk
/// partial is its plain ascending-i sum, so the result is bit-identical to
/// parallel_reduce<double> over qmg::norm2(x[i]) at any width.
template <typename T>
double norm2_w(const LaunchPolicy& policy, int w, const Complex<T>* x,
               long n) {
  if (n <= 0) return 0.0;
  const long nchunks = qmg::detail::reduce_chunks(n);
  std::vector<double> partials(static_cast<size_t>(nchunks), 0.0);
  simd::dispatch_width(w, [&](auto wc) {
    constexpr int W = decltype(wc)::value;
    const long ngroups = (nchunks + W - 1) / W;
    chunk_group_for(n, ngroups, policy, [&](long g) {
      const long c0 = g * W;
      const int lanes = static_cast<int>(std::min<long>(W, nchunks - c0));
      // Zero-init: lanes >= 1 always holds, but the tail elements are
      // otherwise uninitialized and -Wmaybe-uninitialized cannot prove the
      // lanes bound.
      long idx[W] = {}, end[W] = {};
      for (int j = 0; j < lanes; ++j) {
        idx[j] = n * (c0 + j) / nchunks;
        end[j] = n * (c0 + j + 1) / nchunks;
      }
      long steps = end[0] - idx[0];
      for (int j = 1; j < lanes; ++j)
        steps = std::min(steps, end[j] - idx[j]);
      double acc[W] = {};
      for (long t = 0; t < steps; ++t)
        for (int j = 0; j < lanes; ++j)
          acc[j] += static_cast<double>(qmg::norm2(x[idx[j] + t]));
      for (int j = 0; j < lanes; ++j) {
        for (long i = idx[j] + steps; i < end[j]; ++i)
          acc[j] += static_cast<double>(qmg::norm2(x[i]));
        partials[static_cast<size_t>(c0 + j)] = acc[j];
      }
    });
  });
  combine_tree(partials, nchunks, 1);
  return partials[0];
}

/// cdot with chunk lanes (see norm2_w).
template <typename T>
complexd cdot_w(const LaunchPolicy& policy, int w, const Complex<T>* x,
                const Complex<T>* y, long n) {
  if (n <= 0) return complexd{};
  const long nchunks = qmg::detail::reduce_chunks(n);
  std::vector<complexd> partials(static_cast<size_t>(nchunks), complexd{});
  simd::dispatch_width(w, [&](auto wc) {
    constexpr int W = decltype(wc)::value;
    const long ngroups = (nchunks + W - 1) / W;
    chunk_group_for(n, ngroups, policy, [&](long g) {
      const long c0 = g * W;
      const int lanes = static_cast<int>(std::min<long>(W, nchunks - c0));
      // Zero-init: lanes >= 1 always holds, but the tail elements are
      // otherwise uninitialized and -Wmaybe-uninitialized cannot prove the
      // lanes bound.
      long idx[W] = {}, end[W] = {};
      for (int j = 0; j < lanes; ++j) {
        idx[j] = n * (c0 + j) / nchunks;
        end[j] = n * (c0 + j + 1) / nchunks;
      }
      long steps = end[0] - idx[0];
      for (int j = 1; j < lanes; ++j)
        steps = std::min(steps, end[j] - idx[j]);
      double acc_re[W] = {}, acc_im[W] = {};
      for (long t = 0; t < steps; ++t)
        for (int j = 0; j < lanes; ++j) {
          const auto d = conj_mul(x[idx[j] + t], y[idx[j] + t]);
          acc_re[j] += static_cast<double>(d.re);
          acc_im[j] += static_cast<double>(d.im);
        }
      for (int j = 0; j < lanes; ++j) {
        for (long i = idx[j] + steps; i < end[j]; ++i) {
          const auto d = conj_mul(x[i], y[i]);
          acc_re[j] += static_cast<double>(d.re);
          acc_im[j] += static_cast<double>(d.im);
        }
        partials[static_cast<size_t>(c0 + j)] = complexd{acc_re[j], acc_im[j]};
      }
    });
  });
  combine_tree(partials, nchunks, 1);
  return partials[0];
}

}  // namespace detail

template <typename T>
void zero(ColorSpinorField<T>& x) {
  detail::for_each(x.location(), x.size(),
                   [&](long i) { x.data()[i] = Complex<T>{}; });
}

template <typename T>
void copy(ColorSpinorField<T>& y, const ColorSpinorField<T>& x) {
  assert(y.size() == x.size());
  detail::for_each(x.location(), x.size(),
                   [&](long i) { y.data()[i] = x.data()[i]; });
}

/// y += a*x.
template <typename T>
void axpy(T a, const ColorSpinorField<T>& x, ColorSpinorField<T>& y) {
  assert(y.size() == x.size());
  const LaunchPolicy p = detail::policy_for(x.location());
  const int w = effective_simd_width(p);
  const Complex<T>* xd = x.data();
  Complex<T>* yd = y.data();
  if (w > 1) {
    simd::dispatch_width(w, [&](auto wc) {
      constexpr int W = decltype(wc)::value;
      detail::lanes_for_each<W>(
          x.size(), p,
          [&](long b, long e) {
            for (long i = b; i < e; ++i) yd[i] += a * xd[i];
          },
          [&](long i) { yd[i] += a * xd[i]; });
    });
    return;
  }
  parallel_for(x.size(), p, [&](long i) { yd[i] += a * xd[i]; });
}

/// y = x + a*y.
template <typename T>
void xpay(const ColorSpinorField<T>& x, T a, ColorSpinorField<T>& y) {
  assert(y.size() == x.size());
  const LaunchPolicy p = detail::policy_for(x.location());
  const int w = effective_simd_width(p);
  const Complex<T>* xd = x.data();
  Complex<T>* yd = y.data();
  if (w > 1) {
    simd::dispatch_width(w, [&](auto wc) {
      constexpr int W = decltype(wc)::value;
      detail::lanes_for_each<W>(
          x.size(), p,
          [&](long b, long e) {
            for (long i = b; i < e; ++i) yd[i] = xd[i] + a * yd[i];
          },
          [&](long i) { yd[i] = xd[i] + a * yd[i]; });
    });
    return;
  }
  parallel_for(x.size(), p, [&](long i) { yd[i] = xd[i] + a * yd[i]; });
}

/// y = a*x + b*y.
template <typename T>
void axpby(T a, const ColorSpinorField<T>& x, T b, ColorSpinorField<T>& y) {
  assert(y.size() == x.size());
  const LaunchPolicy p = detail::policy_for(x.location());
  const int w = effective_simd_width(p);
  const Complex<T>* xd = x.data();
  Complex<T>* yd = y.data();
  if (w > 1) {
    simd::dispatch_width(w, [&](auto wc) {
      constexpr int W = decltype(wc)::value;
      detail::lanes_for_each<W>(
          x.size(), p,
          [&](long b0, long e) {
            for (long i = b0; i < e; ++i) yd[i] = a * xd[i] + b * yd[i];
          },
          [&](long i) { yd[i] = a * xd[i] + b * yd[i]; });
    });
    return;
  }
  parallel_for(x.size(), p, [&](long i) { yd[i] = a * xd[i] + b * yd[i]; });
}

/// y += a*x (complex a).
template <typename T>
void caxpy(Complex<T> a, const ColorSpinorField<T>& x,
           ColorSpinorField<T>& y) {
  assert(y.size() == x.size());
  const LaunchPolicy p = detail::policy_for(x.location());
  const int w = effective_simd_width(p);
  const Complex<T>* xd = x.data();
  Complex<T>* yd = y.data();
  if (w > 1) {
    simd::dispatch_width(w, [&](auto wc) {
      constexpr int W = decltype(wc)::value;
      detail::lanes_for_each<W>(
          x.size(), p,
          [&](long b, long e) {
            for (long i = b; i < e; ++i) yd[i] += a * xd[i];
          },
          [&](long i) { yd[i] += a * xd[i]; });
    });
    return;
  }
  parallel_for(x.size(), p, [&](long i) { yd[i] += a * xd[i]; });
}

/// y = x + a*y (complex a).
template <typename T>
void cxpay(const ColorSpinorField<T>& x, Complex<T> a,
           ColorSpinorField<T>& y) {
  assert(y.size() == x.size());
  const LaunchPolicy p = detail::policy_for(x.location());
  const int w = effective_simd_width(p);
  const Complex<T>* xd = x.data();
  Complex<T>* yd = y.data();
  if (w > 1) {
    simd::dispatch_width(w, [&](auto wc) {
      constexpr int W = decltype(wc)::value;
      detail::lanes_for_each<W>(
          x.size(), p,
          [&](long b, long e) {
            for (long i = b; i < e; ++i) yd[i] = xd[i] + a * yd[i];
          },
          [&](long i) { yd[i] = xd[i] + a * yd[i]; });
    });
    return;
  }
  parallel_for(x.size(), p, [&](long i) { yd[i] = xd[i] + a * yd[i]; });
}

template <typename T>
void scale(T a, ColorSpinorField<T>& x) {
  const LaunchPolicy p = detail::policy_for(x.location());
  const int w = effective_simd_width(p);
  Complex<T>* xd = x.data();
  if (w > 1) {
    simd::dispatch_width(w, [&](auto wc) {
      constexpr int W = decltype(wc)::value;
      detail::lanes_for_each<W>(
          x.size(), p,
          [&](long b, long e) {
            for (long i = b; i < e; ++i) xd[i] *= a;
          },
          [&](long i) { xd[i] *= a; });
    });
    return;
  }
  parallel_for(x.size(), p, [&](long i) { xd[i] *= a; });
}

// Reductions.  These are the global-synchronization points whose log(N)
// network cost dominates the coarsest MG level at scale (paper Fig. 4).

template <typename T>
double norm2(const ColorSpinorField<T>& x) {
  const LaunchPolicy p = detail::policy_for(x.location());
  const int w = effective_simd_width(p);
  if (w > 1) return detail::norm2_w(p, w, x.data(), x.size());
  return parallel_reduce<double>(
      x.size(), p, [&](long i) { return qmg::norm2(x.data()[i]); });
}

/// <x, y> = sum_i conj(x_i) y_i.
template <typename T>
complexd cdot(const ColorSpinorField<T>& x, const ColorSpinorField<T>& y) {
  assert(y.size() == x.size());
  const LaunchPolicy p = detail::policy_for(x.location());
  const int w = effective_simd_width(p);
  if (w > 1) return detail::cdot_w(p, w, x.data(), y.data(), x.size());
  return parallel_reduce<complexd>(x.size(), p, [&](long i) {
    const auto d = conj_mul(x.data()[i], y.data()[i]);
    return complexd{d.re, d.im};
  });
}

template <typename T>
double rdot(const ColorSpinorField<T>& x, const ColorSpinorField<T>& y) {
  return cdot(x, y).re;
}

// --- Block (multi-rhs) BLAS -------------------------------------------------
//
// Batched operations on BlockSpinor fields (fields/blockspinor.h): one pass
// over the rhs-contiguous storage updates/reduces all N rhs, with per-rhs
// coefficients and an optional per-rhs active mask (the block solvers mask
// converged systems out of updates without breaking the batch).  Per-rhs
// arithmetic order is identical to the single-field kernels above, so every
// block op is bit-identical, rhs by rhs, to N single-field calls —
// including the reductions, which reuse the same fixed chunk decomposition
// and pairwise combine tree over the per-rhs element count.  The width
// paths keep both properties: updates stream dense runs of active rhs
// (mask hoisted out of the inner loop, per-rhs expression untouched),
// reductions put W consecutive rhs in cpack lanes — lanes are independent
// systems — and inactive rhs are never touched either way.

/// Per-rhs activity mask; empty/short vectors treat missing entries active.
using RhsMask = std::vector<std::uint8_t>;

namespace detail {

inline bool rhs_active(const RhsMask* mask, int k) {
  return mask == nullptr || static_cast<size_t>(k) >= mask->size() ||
         (*mask)[static_cast<size_t>(k)] != 0;
}

/// Deterministic per-rhs sum of body(i, k) over i in [0, n): the block
/// analog of qmg::parallel_reduce with the identical chunk decomposition
/// (detail::reduce_chunks(n)) and pairwise combine tree, so the rhs-k
/// result is bit-identical to a single-field parallel_reduce over the same
/// n with the same per-element values.
template <typename V, typename Body>
std::vector<V> block_reduce(long n, int nrhs, const LaunchPolicy& policy,
                            Body&& body) {
  std::vector<V> result(static_cast<size_t>(nrhs), V{});
  if (n <= 0) return result;
  const long nchunks = qmg::detail::reduce_chunks(n);
  std::vector<V> partials(static_cast<size_t>(nchunks * nrhs), V{});
  // One dispatch item per chunk; each item accumulates all rhs so a chunk's
  // per-rhs sums are computed in the same ascending-i order as the
  // single-field chunk sum.
  parallel_for(nchunks, policy, [&](long c) {
    const long begin = n * c / nchunks;
    const long end = n * (c + 1) / nchunks;
    std::vector<V> acc(static_cast<size_t>(nrhs), V{});
    for (long i = begin; i < end; ++i)
      for (int k = 0; k < nrhs; ++k)
        acc[static_cast<size_t>(k)] += body(i, k);
    for (int k = 0; k < nrhs; ++k)
      partials[static_cast<size_t>(c * nrhs + k)] =
          acc[static_cast<size_t>(k)];
  });
  combine_tree(partials, nchunks, nrhs);
  for (int k = 0; k < nrhs; ++k) result[static_cast<size_t>(k)] = partials[static_cast<size_t>(k)];
  return result;
}

/// Shared scaffolding of the width-aware block updates: hoists the rhs
/// mask ONCE into maximal [kb, ke) runs of consecutive active rhs, then
/// visits every element i streaming run_op(i, kb, ke) over each run.  The
/// per-(i, k) rhs_active test is what keeps the masked scalar block walk
/// ~2x off the single-rhs ops — it blocks vectorization of the unit-stride
/// rhs axis — so removing it IS the width path's speedup; the dense inner
/// run loop applies the identical per-rhs scalar expression, and inactive
/// rhs are never touched because they are simply not inside any run.
template <typename RunOp>
void block_runs_for(long n, int nrhs, const LaunchPolicy& policy,
                    const RhsMask* active, RunOp&& run_op) {
  // Typically one run (no mask, or a contiguous converged prefix/suffix);
  // worst case alternating mask bits degrade to per-rhs calls.
  std::vector<std::pair<int, int>> runs;
  for (int k = 0; k < nrhs;) {
    if (!rhs_active(active, k)) {
      ++k;
      continue;
    }
    const int kb = k;
    while (k < nrhs && rhs_active(active, k)) ++k;
    runs.emplace_back(kb, k);
  }
  if (runs.empty()) return;
  if (runs.size() == 1) {
    // The common case (no mask, or one contiguous active span): capture the
    // bounds by value so the element body sees loop-invariant constants
    // instead of re-reading the runs vector behind a store-aliasing fence.
    const int kb = runs[0].first;
    const int ke = runs[0].second;
    parallel_for(n, policy, [&, kb, ke](long i) { run_op(i, kb, ke); });
    return;
  }
  parallel_for(n, policy, [&](long i) {
    for (const auto& r : runs) run_op(i, r.first, r.second);
  });
}

/// Per-chunk accumulator width the block reductions keep on the stack; a
/// wider batch pays one heap allocation per chunk (the scalar block_reduce
/// always does — measured, that allocation is most of why the scalar
/// block reductions trail the single-rhs ones at small nrhs).
inline constexpr int kStackRhs = 64;

/// Per-rhs |x_k|^2 with rhs lanes: block_reduce's chunk walk with the
/// inner rhs loop vectorized and the per-rhs accumulators on the stack;
/// per-rhs accumulation order (ascending i per chunk, same combine tree)
/// is unchanged.
template <typename T>
std::vector<double> block_norm2_w(const LaunchPolicy& policy, int w,
                                  const BlockSpinor<T>& x) {
  const long n = x.rhs_size();
  const int nrhs = x.nrhs();
  std::vector<double> result(static_cast<size_t>(nrhs), 0.0);
  if (n <= 0) return result;
  const long nchunks = qmg::detail::reduce_chunks(n);
  std::vector<double> partials(static_cast<size_t>(nchunks * nrhs), 0.0);
  const Complex<T>* xd = x.data();
  simd::dispatch_width(w, [&](auto wc) {
    constexpr int W = decltype(wc)::value;
    const int ngroups = nrhs / W;
    parallel_for(nchunks, policy, [&](long c) {
      const long begin = n * c / nchunks;
      const long end = n * (c + 1) / nchunks;
      double stack_acc[kStackRhs];
      std::vector<double> heap_acc;
      double* acc = stack_acc;
      if (nrhs > kStackRhs) {
        heap_acc.assign(static_cast<size_t>(nrhs), 0.0);
        acc = heap_acc.data();
      } else {
        std::fill(stack_acc, stack_acc + nrhs, 0.0);
      }
      for (long i = begin; i < end; ++i) {
        const Complex<T>* row = xd + i * nrhs;
        for (int g = 0; g < ngroups; ++g) {
          const int k0 = g * W;
          const auto n2 = simd::norm2(simd::cpack<T, W>::load(row + k0));
          for (int j = 0; j < W; ++j)
            acc[static_cast<size_t>(k0 + j)] +=
                static_cast<double>(n2.v[j]);
        }
        for (int k = ngroups * W; k < nrhs; ++k)
          acc[static_cast<size_t>(k)] +=
              static_cast<double>(qmg::norm2(row[k]));
      }
      for (int k = 0; k < nrhs; ++k)
        partials[static_cast<size_t>(c * nrhs + k)] =
            acc[static_cast<size_t>(k)];
    });
  });
  combine_tree(partials, nchunks, nrhs);
  for (int k = 0; k < nrhs; ++k)
    result[static_cast<size_t>(k)] = partials[static_cast<size_t>(k)];
  return result;
}

/// Per-rhs <x_k, y_k> with rhs lanes (see block_norm2_w).
template <typename T>
std::vector<complexd> block_cdot_w(const LaunchPolicy& policy, int w,
                                   const BlockSpinor<T>& x,
                                   const BlockSpinor<T>& y) {
  const long n = x.rhs_size();
  const int nrhs = x.nrhs();
  std::vector<complexd> result(static_cast<size_t>(nrhs), complexd{});
  if (n <= 0) return result;
  const long nchunks = qmg::detail::reduce_chunks(n);
  std::vector<complexd> partials(static_cast<size_t>(nchunks * nrhs),
                                 complexd{});
  const Complex<T>* xd = x.data();
  const Complex<T>* yd = y.data();
  simd::dispatch_width(w, [&](auto wc) {
    constexpr int W = decltype(wc)::value;
    const int ngroups = nrhs / W;
    parallel_for(nchunks, policy, [&](long c) {
      const long begin = n * c / nchunks;
      const long end = n * (c + 1) / nchunks;
      complexd stack_acc[kStackRhs];
      std::vector<complexd> heap_acc;
      complexd* acc = stack_acc;
      if (nrhs > kStackRhs) {
        heap_acc.assign(static_cast<size_t>(nrhs), complexd{});
        acc = heap_acc.data();
      } else {
        std::fill(stack_acc, stack_acc + nrhs, complexd{});
      }
      for (long i = begin; i < end; ++i) {
        const Complex<T>* xrow = xd + i * nrhs;
        const Complex<T>* yrow = yd + i * nrhs;
        for (int g = 0; g < ngroups; ++g) {
          const int k0 = g * W;
          const auto d = simd::conj_mul(simd::cpack<T, W>::load(xrow + k0),
                                        simd::cpack<T, W>::load(yrow + k0));
          for (int j = 0; j < W; ++j)
            acc[static_cast<size_t>(k0 + j)] +=
                complexd{static_cast<double>(d.re.v[j]),
                         static_cast<double>(d.im.v[j])};
        }
        for (int k = ngroups * W; k < nrhs; ++k) {
          const auto d = conj_mul(xrow[k], yrow[k]);
          acc[static_cast<size_t>(k)] +=
              complexd{static_cast<double>(d.re),
                       static_cast<double>(d.im)};
        }
      }
      for (int k = 0; k < nrhs; ++k)
        partials[static_cast<size_t>(c * nrhs + k)] =
            acc[static_cast<size_t>(k)];
    });
  });
  combine_tree(partials, nchunks, nrhs);
  for (int k = 0; k < nrhs; ++k)
    result[static_cast<size_t>(k)] = partials[static_cast<size_t>(k)];
  return result;
}

}  // namespace detail

template <typename T>
void block_zero(BlockSpinor<T>& x) {
  detail::for_each(Location::Host, x.size(),
                   [&](long i) { x.data()[i] = Complex<T>{}; });
}

template <typename T>
void block_copy(BlockSpinor<T>& y, const BlockSpinor<T>& x,
                const RhsMask* active = nullptr) {
  assert(y.size() == x.size() && y.nrhs() == x.nrhs());
  const int nrhs = x.nrhs();
  const LaunchPolicy p = detail::policy_for(Location::Host);
  const int w = simd::width_for(effective_simd_width(p), nrhs);
  if (w > 1) {
    // Hoist the raw pointers out of the element body (the single-rhs ops do
    // the same): x.at(i, k) re-reads the field's data pointer and stride
    // through the captured object every element, and those member loads
    // sit behind the store-aliasing fence.
    const Complex<T>* xd = x.data();
    Complex<T>* yd = y.data();
    detail::block_runs_for(x.rhs_size(), nrhs, p, active,
                           [xd, yd, nrhs](long i, int kb, int ke) {
                             const Complex<T>* xr = xd + i * nrhs;
                             Complex<T>* yr = yd + i * nrhs;
                             for (int k = kb; k < ke; ++k) yr[k] = xr[k];
                           });
    return;
  }
  detail::for_each(Location::Host, x.rhs_size(), [&](long i) {
    for (int k = 0; k < nrhs; ++k)
      if (detail::rhs_active(active, k)) y.at(i, k) = x.at(i, k);
  });
}

/// y_k += a_k * x_k for every active rhs k.
template <typename T>
void block_axpy(const std::vector<T>& a, const BlockSpinor<T>& x,
                BlockSpinor<T>& y, const RhsMask* active = nullptr) {
  assert(y.size() == x.size() && static_cast<int>(a.size()) == x.nrhs());
  const int nrhs = x.nrhs();
  const LaunchPolicy p = detail::policy_for(Location::Host);
  const int w = simd::width_for(effective_simd_width(p), nrhs);
  if (w > 1) {
    const Complex<T>* xd = x.data();
    Complex<T>* yd = y.data();
    const T* ad = a.data();
    detail::block_runs_for(x.rhs_size(), nrhs, p, active,
                           [xd, yd, ad, nrhs](long i, int kb, int ke) {
                             const Complex<T>* xr = xd + i * nrhs;
                             Complex<T>* yr = yd + i * nrhs;
                             for (int k = kb; k < ke; ++k)
                               yr[k] += ad[k] * xr[k];
                           });
    return;
  }
  detail::for_each(Location::Host, x.rhs_size(), [&](long i) {
    for (int k = 0; k < nrhs; ++k)
      if (detail::rhs_active(active, k))
        y.at(i, k) += a[static_cast<size_t>(k)] * x.at(i, k);
  });
}

/// y_k += a_k * x_k (complex per-rhs coefficients) for every active rhs k.
template <typename T>
void block_caxpy(const std::vector<Complex<T>>& a, const BlockSpinor<T>& x,
                 BlockSpinor<T>& y, const RhsMask* active = nullptr) {
  assert(y.size() == x.size() && static_cast<int>(a.size()) == x.nrhs());
  const int nrhs = x.nrhs();
  const LaunchPolicy p = detail::policy_for(Location::Host);
  const int w = simd::width_for(effective_simd_width(p), nrhs);
  if (w > 1) {
    const Complex<T>* xd = x.data();
    Complex<T>* yd = y.data();
    const Complex<T>* ad = a.data();
    detail::block_runs_for(x.rhs_size(), nrhs, p, active,
                           [xd, yd, ad, nrhs](long i, int kb, int ke) {
                             const Complex<T>* xr = xd + i * nrhs;
                             Complex<T>* yr = yd + i * nrhs;
                             for (int k = kb; k < ke; ++k)
                               yr[k] += ad[k] * xr[k];
                           });
    return;
  }
  detail::for_each(Location::Host, x.rhs_size(), [&](long i) {
    for (int k = 0; k < nrhs; ++k)
      if (detail::rhs_active(active, k))
        y.at(i, k) += a[static_cast<size_t>(k)] * x.at(i, k);
  });
}

/// y_k = x_k + a_k * y_k for every active rhs k.
template <typename T>
void block_xpay(const BlockSpinor<T>& x, const std::vector<T>& a,
                BlockSpinor<T>& y, const RhsMask* active = nullptr) {
  assert(y.size() == x.size() && static_cast<int>(a.size()) == x.nrhs());
  const int nrhs = x.nrhs();
  const LaunchPolicy p = detail::policy_for(Location::Host);
  const int w = simd::width_for(effective_simd_width(p), nrhs);
  if (w > 1) {
    const Complex<T>* xd = x.data();
    Complex<T>* yd = y.data();
    const T* ad = a.data();
    detail::block_runs_for(x.rhs_size(), nrhs, p, active,
                           [xd, yd, ad, nrhs](long i, int kb, int ke) {
                             const Complex<T>* xr = xd + i * nrhs;
                             Complex<T>* yr = yd + i * nrhs;
                             for (int k = kb; k < ke; ++k)
                               yr[k] = xr[k] + ad[k] * yr[k];
                           });
    return;
  }
  detail::for_each(Location::Host, x.rhs_size(), [&](long i) {
    for (int k = 0; k < nrhs; ++k)
      if (detail::rhs_active(active, k))
        y.at(i, k) = x.at(i, k) + a[static_cast<size_t>(k)] * y.at(i, k);
  });
}

/// x_k *= a_k for every active rhs k.
template <typename T>
void block_scale(const std::vector<T>& a, BlockSpinor<T>& x,
                 const RhsMask* active = nullptr) {
  assert(static_cast<int>(a.size()) == x.nrhs());
  const int nrhs = x.nrhs();
  const LaunchPolicy p = detail::policy_for(Location::Host);
  const int w = simd::width_for(effective_simd_width(p), nrhs);
  if (w > 1) {
    Complex<T>* xd = x.data();
    const T* ad = a.data();
    detail::block_runs_for(x.rhs_size(), nrhs, p, active,
                           [xd, ad, nrhs](long i, int kb, int ke) {
                             Complex<T>* xr = xd + i * nrhs;
                             for (int k = kb; k < ke; ++k) xr[k] *= ad[k];
                           });
    return;
  }
  detail::for_each(Location::Host, x.rhs_size(), [&](long i) {
    for (int k = 0; k < nrhs; ++k)
      if (detail::rhs_active(active, k))
        x.at(i, k) *= a[static_cast<size_t>(k)];
  });
}

/// Per-rhs |x_k|^2 under an explicit launch policy.  The deterministic
/// chunk decomposition makes the result bit-identical across policies, so
/// this exists for *scheduling*, not values: a reduction posted on a comm
/// worker concurrently with a pool launch must pass a Serial policy
/// (ThreadPool::run is single-caller; see comm_worker_policy()).
template <typename T>
std::vector<double> block_norm2(const BlockSpinor<T>& x,
                                const LaunchPolicy& p) {
  const int w = simd::width_for(effective_simd_width(p), x.nrhs());
  if (w > 1) return detail::block_norm2_w(p, w, x);
  return detail::block_reduce<double>(
      x.rhs_size(), x.nrhs(), p,
      [&](long i, int k) { return qmg::norm2(x.at(i, k)); });
}

/// Per-rhs |x_k|^2 — bit-identical, rhs by rhs, to norm2(extract_rhs(k)).
template <typename T>
std::vector<double> block_norm2(const BlockSpinor<T>& x) {
  return block_norm2(x, detail::policy_for(Location::Host));
}

/// Per-rhs <x_k, y_k> under an explicit launch policy (see block_norm2).
template <typename T>
std::vector<complexd> block_cdot(const BlockSpinor<T>& x,
                                 const BlockSpinor<T>& y,
                                 const LaunchPolicy& p) {
  assert(y.size() == x.size() && y.nrhs() == x.nrhs());
  const int w = simd::width_for(effective_simd_width(p), x.nrhs());
  if (w > 1) return detail::block_cdot_w(p, w, x, y);
  return detail::block_reduce<complexd>(
      x.rhs_size(), x.nrhs(), p, [&](long i, int k) {
        const auto d = conj_mul(x.at(i, k), y.at(i, k));
        return complexd{d.re, d.im};
      });
}

/// Per-rhs <x_k, y_k> — bit-identical, rhs by rhs, to cdot of the
/// extracted fields.
template <typename T>
std::vector<complexd> block_cdot(const BlockSpinor<T>& x,
                                 const BlockSpinor<T>& y) {
  return block_cdot(x, y, detail::policy_for(Location::Host));
}

}  // namespace blas
}  // namespace qmg
