#pragma once
// Field BLAS, written in the single-code-path style of paper Listing 1:
// each operation is a small per-element body ("__device__ __host__"
// function) launched through the unified dispatch layer
// (parallel/dispatch.h).  Dispatch follows the field's Location: Device
// fields route through the SimtModel backend (simulated CUDA launch
// order, recorded in SimtStats), Host fields through the process default
// policy (Threaded unless retuned).

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

#include "fields/blockspinor.h"
#include "fields/colorspinor.h"
#include "parallel/dispatch.h"

namespace qmg {
namespace blas {

namespace detail {

/// Launch policy for a field's location.  Streaming BLAS bodies are cheap,
/// so the Threaded path only engages above a grain worth waking the pool.
inline LaunchPolicy policy_for(Location loc) {
  if (loc == Location::Device) {
    LaunchPolicy p;
    p.backend = Backend::SimtModel;
    return p;
  }
  LaunchPolicy p = default_policy();
  if (p.grain < 1024) p.grain = 1024;
  return p;
}

/// Run `body(i)` for i in [0, n) on the field's location.
template <typename Body>
void for_each(Location loc, long n, Body&& body) {
  parallel_for(n, policy_for(loc), body);
}

}  // namespace detail

template <typename T>
void zero(ColorSpinorField<T>& x) {
  detail::for_each(x.location(), x.size(),
                   [&](long i) { x.data()[i] = Complex<T>{}; });
}

template <typename T>
void copy(ColorSpinorField<T>& y, const ColorSpinorField<T>& x) {
  assert(y.size() == x.size());
  detail::for_each(x.location(), x.size(),
                   [&](long i) { y.data()[i] = x.data()[i]; });
}

/// y += a*x.
template <typename T>
void axpy(T a, const ColorSpinorField<T>& x, ColorSpinorField<T>& y) {
  assert(y.size() == x.size());
  detail::for_each(x.location(), x.size(),
                   [&](long i) { y.data()[i] += a * x.data()[i]; });
}

/// y = x + a*y.
template <typename T>
void xpay(const ColorSpinorField<T>& x, T a, ColorSpinorField<T>& y) {
  assert(y.size() == x.size());
  detail::for_each(x.location(), x.size(), [&](long i) {
    y.data()[i] = x.data()[i] + a * y.data()[i];
  });
}

/// y = a*x + b*y.
template <typename T>
void axpby(T a, const ColorSpinorField<T>& x, T b, ColorSpinorField<T>& y) {
  assert(y.size() == x.size());
  detail::for_each(x.location(), x.size(), [&](long i) {
    y.data()[i] = a * x.data()[i] + b * y.data()[i];
  });
}

/// y += a*x (complex a).
template <typename T>
void caxpy(Complex<T> a, const ColorSpinorField<T>& x,
           ColorSpinorField<T>& y) {
  assert(y.size() == x.size());
  detail::for_each(x.location(), x.size(),
                   [&](long i) { y.data()[i] += a * x.data()[i]; });
}

/// y = x + a*y (complex a).
template <typename T>
void cxpay(const ColorSpinorField<T>& x, Complex<T> a,
           ColorSpinorField<T>& y) {
  assert(y.size() == x.size());
  detail::for_each(x.location(), x.size(), [&](long i) {
    y.data()[i] = x.data()[i] + a * y.data()[i];
  });
}

template <typename T>
void scale(T a, ColorSpinorField<T>& x) {
  detail::for_each(x.location(), x.size(),
                   [&](long i) { x.data()[i] *= a; });
}

// Reductions.  These are the global-synchronization points whose log(N)
// network cost dominates the coarsest MG level at scale (paper Fig. 4).

template <typename T>
double norm2(const ColorSpinorField<T>& x) {
  return parallel_reduce<double>(
      x.size(), detail::policy_for(x.location()),
      [&](long i) { return qmg::norm2(x.data()[i]); });
}

/// <x, y> = sum_i conj(x_i) y_i.
template <typename T>
complexd cdot(const ColorSpinorField<T>& x, const ColorSpinorField<T>& y) {
  assert(y.size() == x.size());
  return parallel_reduce<complexd>(
      x.size(), detail::policy_for(x.location()), [&](long i) {
        const auto d = conj_mul(x.data()[i], y.data()[i]);
        return complexd{d.re, d.im};
      });
}

template <typename T>
double rdot(const ColorSpinorField<T>& x, const ColorSpinorField<T>& y) {
  return cdot(x, y).re;
}

// --- Block (multi-rhs) BLAS -------------------------------------------------
//
// Batched operations on BlockSpinor fields (fields/blockspinor.h): one pass
// over the rhs-contiguous storage updates/reduces all N rhs, with per-rhs
// coefficients and an optional per-rhs active mask (the block solvers mask
// converged systems out of updates without breaking the batch).  Per-rhs
// arithmetic order is identical to the single-field kernels above, so every
// block op is bit-identical, rhs by rhs, to N single-field calls —
// including the reductions, which reuse the same fixed chunk decomposition
// and pairwise combine tree over the per-rhs element count.

/// Per-rhs activity mask; empty/short vectors treat missing entries active.
using RhsMask = std::vector<std::uint8_t>;

namespace detail {

inline bool rhs_active(const RhsMask* mask, int k) {
  return mask == nullptr || static_cast<size_t>(k) >= mask->size() ||
         (*mask)[static_cast<size_t>(k)] != 0;
}

/// Deterministic per-rhs sum of body(i, k) over i in [0, n): the block
/// analog of qmg::parallel_reduce with the identical chunk decomposition
/// (detail::reduce_chunks(n)) and pairwise combine tree, so the rhs-k
/// result is bit-identical to a single-field parallel_reduce over the same
/// n with the same per-element values.
template <typename V, typename Body>
std::vector<V> block_reduce(long n, int nrhs, const LaunchPolicy& policy,
                            Body&& body) {
  std::vector<V> result(static_cast<size_t>(nrhs), V{});
  if (n <= 0) return result;
  const long nchunks = qmg::detail::reduce_chunks(n);
  std::vector<V> partials(static_cast<size_t>(nchunks * nrhs), V{});
  // One dispatch item per chunk; each item accumulates all rhs so a chunk's
  // per-rhs sums are computed in the same ascending-i order as the
  // single-field chunk sum.
  parallel_for(nchunks, policy, [&](long c) {
    const long begin = n * c / nchunks;
    const long end = n * (c + 1) / nchunks;
    std::vector<V> acc(static_cast<size_t>(nrhs), V{});
    for (long i = begin; i < end; ++i)
      for (int k = 0; k < nrhs; ++k)
        acc[static_cast<size_t>(k)] += body(i, k);
    for (int k = 0; k < nrhs; ++k)
      partials[static_cast<size_t>(c * nrhs + k)] =
          acc[static_cast<size_t>(k)];
  });
  // Fixed pairwise combine tree, per rhs (mirrors parallel_reduce).
  for (long span = 1; span < nchunks; span *= 2)
    for (long i = 0; i + span < nchunks; i += 2 * span)
      for (int k = 0; k < nrhs; ++k)
        partials[static_cast<size_t>(i * nrhs + k)] +=
            partials[static_cast<size_t>((i + span) * nrhs + k)];
  for (int k = 0; k < nrhs; ++k) result[static_cast<size_t>(k)] = partials[static_cast<size_t>(k)];
  return result;
}

}  // namespace detail

template <typename T>
void block_zero(BlockSpinor<T>& x) {
  detail::for_each(Location::Host, x.size(),
                   [&](long i) { x.data()[i] = Complex<T>{}; });
}

template <typename T>
void block_copy(BlockSpinor<T>& y, const BlockSpinor<T>& x,
                const RhsMask* active = nullptr) {
  assert(y.size() == x.size() && y.nrhs() == x.nrhs());
  const int nrhs = x.nrhs();
  detail::for_each(Location::Host, x.rhs_size(), [&](long i) {
    for (int k = 0; k < nrhs; ++k)
      if (detail::rhs_active(active, k)) y.at(i, k) = x.at(i, k);
  });
}

/// y_k += a_k * x_k for every active rhs k.
template <typename T>
void block_axpy(const std::vector<T>& a, const BlockSpinor<T>& x,
                BlockSpinor<T>& y, const RhsMask* active = nullptr) {
  assert(y.size() == x.size() && static_cast<int>(a.size()) == x.nrhs());
  const int nrhs = x.nrhs();
  detail::for_each(Location::Host, x.rhs_size(), [&](long i) {
    for (int k = 0; k < nrhs; ++k)
      if (detail::rhs_active(active, k))
        y.at(i, k) += a[static_cast<size_t>(k)] * x.at(i, k);
  });
}

/// y_k += a_k * x_k (complex per-rhs coefficients) for every active rhs k.
template <typename T>
void block_caxpy(const std::vector<Complex<T>>& a, const BlockSpinor<T>& x,
                 BlockSpinor<T>& y, const RhsMask* active = nullptr) {
  assert(y.size() == x.size() && static_cast<int>(a.size()) == x.nrhs());
  const int nrhs = x.nrhs();
  detail::for_each(Location::Host, x.rhs_size(), [&](long i) {
    for (int k = 0; k < nrhs; ++k)
      if (detail::rhs_active(active, k))
        y.at(i, k) += a[static_cast<size_t>(k)] * x.at(i, k);
  });
}

/// y_k = x_k + a_k * y_k for every active rhs k.
template <typename T>
void block_xpay(const BlockSpinor<T>& x, const std::vector<T>& a,
                BlockSpinor<T>& y, const RhsMask* active = nullptr) {
  assert(y.size() == x.size() && static_cast<int>(a.size()) == x.nrhs());
  const int nrhs = x.nrhs();
  detail::for_each(Location::Host, x.rhs_size(), [&](long i) {
    for (int k = 0; k < nrhs; ++k)
      if (detail::rhs_active(active, k))
        y.at(i, k) = x.at(i, k) + a[static_cast<size_t>(k)] * y.at(i, k);
  });
}

/// x_k *= a_k for every active rhs k.
template <typename T>
void block_scale(const std::vector<T>& a, BlockSpinor<T>& x,
                 const RhsMask* active = nullptr) {
  assert(static_cast<int>(a.size()) == x.nrhs());
  const int nrhs = x.nrhs();
  detail::for_each(Location::Host, x.rhs_size(), [&](long i) {
    for (int k = 0; k < nrhs; ++k)
      if (detail::rhs_active(active, k))
        x.at(i, k) *= a[static_cast<size_t>(k)];
  });
}

/// Per-rhs |x_k|^2 — bit-identical, rhs by rhs, to norm2(extract_rhs(k)).
template <typename T>
std::vector<double> block_norm2(const BlockSpinor<T>& x) {
  return detail::block_reduce<double>(
      x.rhs_size(), x.nrhs(), detail::policy_for(Location::Host),
      [&](long i, int k) { return qmg::norm2(x.at(i, k)); });
}

/// Per-rhs <x_k, y_k> — bit-identical, rhs by rhs, to cdot of the
/// extracted fields.
template <typename T>
std::vector<complexd> block_cdot(const BlockSpinor<T>& x,
                                 const BlockSpinor<T>& y) {
  assert(y.size() == x.size() && y.nrhs() == x.nrhs());
  return detail::block_reduce<complexd>(
      x.rhs_size(), x.nrhs(), detail::policy_for(Location::Host),
      [&](long i, int k) {
        const auto d = conj_mul(x.at(i, k), y.at(i, k));
        return complexd{d.re, d.im};
      });
}

}  // namespace blas
}  // namespace qmg
