#pragma once
// Field BLAS, written in the single-code-path style of paper Listing 1:
// each operation is a small per-element body ("__device__ __host__"
// function), wrapped by two stubs — a "GPU kernel" stub that derives the
// element index from a simulated thread id, and a CPU stub that loops (with
// OpenMP) over the index range.  Dispatch follows the field's Location.

#include <cassert>
#include <cmath>

#include "fields/colorspinor.h"

namespace qmg {
namespace blas {

namespace detail {

/// Run `body(i)` for i in [0, n) on the field's location.  The Device path
/// mimics a kernel launch: iteration chunked into "thread blocks" whose
/// indices reproduce blockIdx/blockDim/threadIdx arithmetic.
template <typename Body>
void for_each(Location loc, long n, Body&& body) {
  if (loc == Location::Device) {
    constexpr long kBlockDim = 128;  // simulated CUDA block size
    const long grid_dim = (n + kBlockDim - 1) / kBlockDim;
    for (long block_idx = 0; block_idx < grid_dim; ++block_idx) {
      for (long thread_idx = 0; thread_idx < kBlockDim; ++thread_idx) {
        const long i = block_idx * kBlockDim + thread_idx;
        if (i >= n) break;
        body(i);
      }
    }
  } else {
#pragma omp parallel for
    for (long i = 0; i < n; ++i) body(i);
  }
}

}  // namespace detail

template <typename T>
void zero(ColorSpinorField<T>& x) {
  detail::for_each(x.location(), x.size(),
                   [&](long i) { x.data()[i] = Complex<T>{}; });
}

template <typename T>
void copy(ColorSpinorField<T>& y, const ColorSpinorField<T>& x) {
  assert(y.size() == x.size());
  detail::for_each(x.location(), x.size(),
                   [&](long i) { y.data()[i] = x.data()[i]; });
}

/// y += a*x.
template <typename T>
void axpy(T a, const ColorSpinorField<T>& x, ColorSpinorField<T>& y) {
  assert(y.size() == x.size());
  detail::for_each(x.location(), x.size(),
                   [&](long i) { y.data()[i] += a * x.data()[i]; });
}

/// y = x + a*y.
template <typename T>
void xpay(const ColorSpinorField<T>& x, T a, ColorSpinorField<T>& y) {
  assert(y.size() == x.size());
  detail::for_each(x.location(), x.size(), [&](long i) {
    y.data()[i] = x.data()[i] + a * y.data()[i];
  });
}

/// y = a*x + b*y.
template <typename T>
void axpby(T a, const ColorSpinorField<T>& x, T b, ColorSpinorField<T>& y) {
  assert(y.size() == x.size());
  detail::for_each(x.location(), x.size(), [&](long i) {
    y.data()[i] = a * x.data()[i] + b * y.data()[i];
  });
}

/// y += a*x (complex a).
template <typename T>
void caxpy(Complex<T> a, const ColorSpinorField<T>& x,
           ColorSpinorField<T>& y) {
  assert(y.size() == x.size());
  detail::for_each(x.location(), x.size(),
                   [&](long i) { y.data()[i] += a * x.data()[i]; });
}

/// y = x + a*y (complex a).
template <typename T>
void cxpay(const ColorSpinorField<T>& x, Complex<T> a,
           ColorSpinorField<T>& y) {
  assert(y.size() == x.size());
  detail::for_each(x.location(), x.size(), [&](long i) {
    y.data()[i] = x.data()[i] + a * y.data()[i];
  });
}

template <typename T>
void scale(T a, ColorSpinorField<T>& x) {
  detail::for_each(x.location(), x.size(),
                   [&](long i) { x.data()[i] *= a; });
}

// Reductions.  These are the global-synchronization points whose log(N)
// network cost dominates the coarsest MG level at scale (paper Fig. 4).

template <typename T>
double norm2(const ColorSpinorField<T>& x) {
  double sum = 0;
#pragma omp parallel for reduction(+ : sum)
  for (long i = 0; i < x.size(); ++i) sum += qmg::norm2(x.data()[i]);
  return sum;
}

/// <x, y> = sum_i conj(x_i) y_i.
template <typename T>
complexd cdot(const ColorSpinorField<T>& x, const ColorSpinorField<T>& y) {
  assert(y.size() == x.size());
  double re = 0, im = 0;
#pragma omp parallel for reduction(+ : re, im)
  for (long i = 0; i < x.size(); ++i) {
    const auto d = conj_mul(x.data()[i], y.data()[i]);
    re += d.re;
    im += d.im;
  }
  return {re, im};
}

template <typename T>
double rdot(const ColorSpinorField<T>& x, const ColorSpinorField<T>& y) {
  return cdot(x, y).re;
}

}  // namespace blas
}  // namespace qmg
