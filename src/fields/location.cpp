#include "fields/location.h"

namespace qmg {

TransferLedger& transfer_ledger() {
  static TransferLedger ledger;
  return ledger;
}

}  // namespace qmg
