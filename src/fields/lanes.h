#pragma once
// Lane views over block-spinor storage: the bridge between the
// rhs-contiguous BlockSpinor layout (fields/blockspinor.h) and the SoA
// lane packs (linalg/simd.h).  Because the rhs axis is unit stride at a
// fixed (site, spin, color), a pack of W consecutive rhs is one
// deinterleaving load per dof component — these helpers are the pack
// analog of BlockSpinor::gather_site_rhs / scatter_site_rhs, and a
// width-aware kernel swaps Complex<T> site buffers for cpack<T, W> site
// buffers without any other structural change.

#include "fields/blockspinor.h"
#include "linalg/simd.h"

namespace qmg {
namespace simd {

/// Gather one site's dof vector of rhs lanes [k0, k0+W) into pack buffers;
/// buf must hold site_dof() packs.  Lane j of buf[d] is the value
/// gather_site_rhs(site, k0+j) would place at buf[d].
template <int W, typename T>
inline void gather_site_lanes(const BlockSpinor<T>& f, long site, int k0,
                              cpack<T, W>* buf) {
  const Complex<T>* p = f.site_data(site) + k0;
  const long stride = f.nrhs();
  const int dof = f.site_dof();
  for (int d = 0; d < dof; ++d)
    buf[d] = cpack<T, W>::load(p + static_cast<long>(d) * stride);
}

/// Scatter pack site buffers back into rhs lanes [k0, k0+W).
template <int W, typename T>
inline void scatter_site_lanes(BlockSpinor<T>& f, long site, int k0,
                               const cpack<T, W>* buf) {
  Complex<T>* p = f.site_data(site) + k0;
  const long stride = f.nrhs();
  const int dof = f.site_dof();
  for (int d = 0; d < dof; ++d)
    buf[d].store(p + static_cast<long>(d) * stride);
}

}  // namespace simd
}  // namespace qmg
