#pragma once
// Color-spinor ("quark") fields.
//
// A field assigns a complex vector of nspin x ncolor components to every
// lattice site.  On the fine grid nspin=4, ncolor=3; on coarse MG grids
// nspin=2 and ncolor = Nhat_c (number of null vectors, e.g. 24 or 32).
//
// Following the paper's heterogeneous design (section 5), each field carries
// run-time members for its precision (the template parameter), its data
// ORDER (site-major "AoS" vs dof-major "SoA") and its LOCATION (Host or
// Device).  Computation kernels query these members and dispatch; moving a
// field between locations is explicit and metered so the simulated PCIe
// traffic can be accounted for.

#include <cassert>
#include <cstdint>
#include <vector>

#include "fields/location.h"
#include "lattice/geometry.h"
#include "linalg/aligned.h"
#include "linalg/complex.h"
#include "util/rng.h"

namespace qmg {

enum class Subset { Full, Even, Odd };

enum class FieldOrder {
  SiteMajor,  // index = (site*ns + s)*nc + c  — natural for CPU
  DofMajor    // index = (s*nc + c)*nsites + site — coalesced for GPU threads
};

inline const char* to_string(Subset s) {
  switch (s) {
    case Subset::Full: return "full";
    case Subset::Even: return "even";
    default: return "odd";
  }
}

template <typename T>
class ColorSpinorField {
 public:
  using value_type = Complex<T>;

  ColorSpinorField() = default;

  ColorSpinorField(GeometryPtr geom, int nspin, int ncolor,
                   Subset subset = Subset::Full,
                   FieldOrder order = FieldOrder::SiteMajor,
                   Location location = Location::Host)
      : geom_(std::move(geom)),
        nspin_(nspin),
        ncolor_(ncolor),
        subset_(subset),
        order_(order),
        location_(location) {
    nsites_ = subset == Subset::Full ? geom_->volume() : geom_->half_volume();
    data_.assign(static_cast<size_t>(nsites_) * nspin_ * ncolor_, value_type{});
    assert(data_.empty() || is_field_aligned(data_.data()));
  }

  /// A new zero field with the same shape as this one.
  ColorSpinorField similar() const {
    return ColorSpinorField(geom_, nspin_, ncolor_, subset_, order_,
                            location_);
  }

  const GeometryPtr& geometry() const { return geom_; }
  int nspin() const { return nspin_; }
  int ncolor() const { return ncolor_; }
  int site_dof() const { return nspin_ * ncolor_; }
  long nsites() const { return nsites_; }
  long size() const { return static_cast<long>(data_.size()); }
  Subset subset() const { return subset_; }
  FieldOrder order() const { return order_; }
  Location location() const { return location_; }

  size_t linear_index(long site, int s, int c) const {
    return order_ == FieldOrder::SiteMajor
               ? (static_cast<size_t>(site) * nspin_ + s) * ncolor_ + c
               : (static_cast<size_t>(s) * ncolor_ + c) * nsites_ + site;
  }

  value_type& operator()(long site, int s, int c) {
    return data_[linear_index(site, s, c)];
  }
  const value_type& operator()(long site, int s, int c) const {
    return data_[linear_index(site, s, c)];
  }

  /// Contiguous per-site pointer; only meaningful in SiteMajor order.
  value_type* site_data(long site) {
    assert(order_ == FieldOrder::SiteMajor);
    return data_.data() + static_cast<size_t>(site) * site_dof();
  }
  const value_type* site_data(long site) const {
    assert(order_ == FieldOrder::SiteMajor);
    return data_.data() + static_cast<size_t>(site) * site_dof();
  }

  value_type* data() { return data_.data(); }
  const value_type* data() const { return data_.data(); }

  /// Repack the field into a different data order (in place).
  void reorder(FieldOrder target) {
    if (target == order_) return;
    ColorSpinorField tmp(geom_, nspin_, ncolor_, subset_, target, location_);
    for (long i = 0; i < nsites_; ++i)
      for (int s = 0; s < nspin_; ++s)
        for (int c = 0; c < ncolor_; ++c) tmp(i, s, c) = (*this)(i, s, c);
    *this = std::move(tmp);
  }

  /// Explicit migration between memory spaces; meters simulated PCIe bytes.
  void to(Location target) {
    if (target == location_) return;
    transfer_ledger().record(location_, target,
                             data_.size() * sizeof(value_type));
    location_ = target;
  }

  /// Gaussian random fill, reproducible independent of traversal order.
  void gaussian(std::uint64_t seed) {
    const SiteRng rng(seed);
    const int dof = site_dof();
    for (long i = 0; i < nsites_; ++i) {
      // For parity subsets, key the RNG on the full-lattice site index so
      // even/odd halves of a seed never collide.
      const long key = subset_ == Subset::Full
                           ? i
                           : geom_->full_index(subset_ == Subset::Odd, i);
      for (int d = 0; d < dof; ++d) {
        const int s = d / ncolor_;
        const int c = d % ncolor_;
        (*this)(i, s, c) =
            value_type(static_cast<T>(rng.normal(key, 2 * d)),
                       static_cast<T>(rng.normal(key, 2 * d + 1)));
      }
    }
  }

  /// Unit point source at (site, spin, color) — the propagator source.
  void point_source(long site, int s, int c) {
    std::fill(data_.begin(), data_.end(), value_type{});
    (*this)(site, s, c) = value_type(1);
  }

 private:
  GeometryPtr geom_;
  int nspin_ = 0;
  int ncolor_ = 0;
  long nsites_ = 0;
  Subset subset_ = Subset::Full;
  FieldOrder order_ = FieldOrder::SiteMajor;
  Location location_ = Location::Host;
  // Aligned so the SIMD lane kernels' pack loads start on a cache-line
  // boundary (linalg/aligned.h).
  aligned_vector<value_type> data_;
};

/// Copy the given parity's sites of a full field into a parity field.
template <typename T>
void extract_parity(ColorSpinorField<T>& out, const ColorSpinorField<T>& in,
                    int parity) {
  assert(in.subset() == Subset::Full);
  assert(out.subset() == (parity ? Subset::Odd : Subset::Even));
  const auto& geom = *in.geometry();
  for (long cb = 0; cb < geom.half_volume(); ++cb) {
    const long full = geom.full_index(parity, cb);
    for (int s = 0; s < in.nspin(); ++s)
      for (int c = 0; c < in.ncolor(); ++c) out(cb, s, c) = in(full, s, c);
  }
}

/// Scatter a parity field back into the corresponding sites of a full field.
template <typename T>
void insert_parity(ColorSpinorField<T>& out, const ColorSpinorField<T>& in,
                   int parity) {
  assert(out.subset() == Subset::Full);
  assert(in.subset() == (parity ? Subset::Odd : Subset::Even));
  const auto& geom = *out.geometry();
  for (long cb = 0; cb < geom.half_volume(); ++cb) {
    const long full = geom.full_index(parity, cb);
    for (int s = 0; s < out.nspin(); ++s)
      for (int c = 0; c < out.ncolor(); ++c) out(full, s, c) = in(cb, s, c);
  }
}

/// Precision conversion (double <-> float), preserving shape and order.
template <typename To, typename From>
ColorSpinorField<To> convert(const ColorSpinorField<From>& in) {
  ColorSpinorField<To> out(in.geometry(), in.nspin(), in.ncolor(), in.subset(),
                           in.order(), in.location());
  for (long i = 0; i < in.size(); ++i)
    out.data()[i] = Complex<To>(static_cast<To>(in.data()[i].re),
                                static_cast<To>(in.data()[i].im));
  return out;
}

template <typename To, typename From>
void convert_into(ColorSpinorField<To>& out, const ColorSpinorField<From>& in) {
  assert(out.size() == in.size());
  for (long i = 0; i < in.size(); ++i)
    out.data()[i] = Complex<To>(static_cast<To>(in.data()[i].re),
                                static_cast<To>(in.data()[i].im));
}

}  // namespace qmg
