#include "gauge/ensemble.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "util/rng.h"

namespace qmg {

template <typename T>
GaugeField<T> unit_gauge(GeometryPtr geom) {
  return GaugeField<T>(std::move(geom));
}

template <typename T>
GaugeField<T> random_gauge(GeometryPtr geom, std::uint64_t seed) {
  GaugeField<T> gauge(std::move(geom));
  const SiteRng rng(seed);
  const auto& g = *gauge.geometry();
  for (int mu = 0; mu < kNDim; ++mu)
    for (long s = 0; s < g.volume(); ++s)
      gauge.link(mu, s) = random_su3<T>(rng, s, 100 * mu);
  return gauge;
}

template <typename T>
void relax_gauge(GaugeField<T>& gauge, int sweeps) {
  // Relaxation sweeps: replace each link by the reunitarized average with
  // its "staple-free" neighbors along mu, introducing smoothness akin to APE
  // smearing so the ensemble is not pure white noise.
  const auto& g = *gauge.geometry();
  for (int sweep = 0; sweep < sweeps; ++sweep) {
    GaugeField<T> next = gauge;
    for (int mu = 0; mu < kNDim; ++mu)
      for (long s = 0; s < g.volume(); ++s) {
        Su3<T> avg = gauge.link(mu, s) * T(2);
        for (int nu = 0; nu < kNDim; ++nu) {
          if (nu == mu) continue;
          avg += gauge.link(mu, g.neighbor_fwd(s, nu)) * T(0.5);
          avg += gauge.link(mu, g.neighbor_bwd(s, nu)) * T(0.5);
        }
        reunitarize(avg);
        next.link(mu, s) = avg;
      }
    gauge = std::move(next);
  }
}

template <typename T>
GaugeField<T> disordered_gauge(GeometryPtr geom, double roughness,
                               std::uint64_t seed, int sweeps) {
  GaugeField<T> gauge(std::move(geom));
  if (roughness <= 0.0) return gauge;
  const auto& g = *gauge.geometry();
  const T eps = static_cast<T>(roughness);
  const SiteRng rng(seed);
  for (int mu = 0; mu < kNDim; ++mu)
    for (long s = 0; s < g.volume(); ++s)
      gauge.link(mu, s) =
          random_su3_near_identity<T>(rng, s, 1000 * (mu + 1), eps);
  relax_gauge(gauge, sweeps);
  return gauge;
}

template <typename T>
double average_plaquette(const GaugeField<T>& gauge) {
  const auto& g = *gauge.geometry();
  double sum = 0;
  long count = 0;
  for (long s = 0; s < g.volume(); ++s)
    for (int mu = 0; mu < kNDim; ++mu)
      for (int nu = mu + 1; nu < kNDim; ++nu) {
        // P = U_mu(x) U_nu(x+mu) U_mu(x+nu)^dag U_nu(x)^dag
        const Su3<T> p = gauge.link(mu, s) *
                         gauge.link(nu, g.neighbor_fwd(s, mu)) *
                         adjoint(gauge.link(mu, g.neighbor_fwd(s, nu))) *
                         adjoint(gauge.link(nu, s));
        sum += trace(p).re / 3.0;
        ++count;
      }
  return sum / static_cast<double>(count);
}

void save_gauge(const GaugeField<double>& gauge, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) throw std::runtime_error("cannot open " + path + " for writing");
  const auto& g = *gauge.geometry();
  const char magic[8] = {'q', 'm', 'g', 'G', 'A', 'U', 'G', 'E'};
  std::fwrite(magic, 1, 8, f);
  std::int64_t dims[4];
  for (int mu = 0; mu < 4; ++mu) dims[mu] = g.dim(mu);
  std::fwrite(dims, sizeof(std::int64_t), 4, f);
  const double aniso = gauge.anisotropy();
  std::fwrite(&aniso, sizeof(double), 1, f);
  for (int mu = 0; mu < kNDim; ++mu)
    for (long s = 0; s < g.volume(); ++s)
      std::fwrite(gauge.link(mu, s).e.data(), sizeof(complexd), 9, f);
  std::fclose(f);
}

GaugeField<double> load_gauge(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw std::runtime_error("cannot open " + path);
  char magic[8];
  if (std::fread(magic, 1, 8, f) != 8) {
    std::fclose(f);
    throw std::runtime_error("truncated gauge file '" + path +
                             "': shorter than the 8-byte magic");
  }
  if (std::string(magic, 8) != "qmgGAUGE") {
    std::fclose(f);
    throw std::runtime_error("corrupt gauge file '" + path +
                             "': bad magic (not a qmg gauge file)");
  }
  std::int64_t dims[4];
  if (std::fread(dims, sizeof(std::int64_t), 4, f) != 4) {
    std::fclose(f);
    throw std::runtime_error("truncated gauge file '" + path +
                             "': header ends inside the dimensions");
  }
  // Validate the dimensions before trusting them: a corrupted header would
  // otherwise drive a multi-gigabyte allocation (or a negative volume) and
  // fail far from the real cause.
  for (int mu = 0; mu < 4; ++mu) {
    if (dims[mu] < 1 || dims[mu] > 65536) {
      std::fclose(f);
      throw std::runtime_error(
          "corrupt gauge file '" + path + "': implausible dimension dims[" +
          std::to_string(mu) + "] = " + std::to_string(dims[mu]) +
          " (want 1..65536)");
    }
  }
  double aniso = 1.0;
  if (std::fread(&aniso, sizeof(double), 1, f) != 1) {
    std::fclose(f);
    throw std::runtime_error("truncated gauge file '" + path +
                             "': header ends before the anisotropy");
  }
  if (!std::isfinite(aniso) || aniso <= 0.0) {
    std::fclose(f);
    throw std::runtime_error("corrupt gauge file '" + path +
                             "': non-finite or non-positive anisotropy " +
                             std::to_string(aniso));
  }
  auto geom = make_geometry(Coord{static_cast<int>(dims[0]),
                                  static_cast<int>(dims[1]),
                                  static_cast<int>(dims[2]),
                                  static_cast<int>(dims[3])});
  GaugeField<double> gauge(geom);
  gauge.set_anisotropy(aniso);
  for (int mu = 0; mu < kNDim; ++mu)
    for (long s = 0; s < geom->volume(); ++s) {
      if (std::fread(gauge.link(mu, s).e.data(), sizeof(complexd), 9, f) != 9) {
        std::fclose(f);
        throw std::runtime_error(
            "truncated gauge file '" + path + "': link data ends at site " +
            std::to_string(s) + " of direction " + std::to_string(mu) +
            " (expected " + std::to_string(geom->volume()) + " sites x " +
            std::to_string(static_cast<int>(kNDim)) + " directions)");
      }
    }
  std::fclose(f);
  return gauge;
}

// --- GaugeStream ------------------------------------------------------------

namespace {

/// First path of a disk stream, validated before the member initializer
/// list consumes it.
const std::string& first_path(const std::vector<std::string>& paths) {
  if (paths.empty())
    throw std::invalid_argument("GaugeStream: empty path sequence");
  return paths.front();
}

std::string markov_id(std::uint64_t seed, int index) {
  return "markov-s" + std::to_string(seed) + "-" + std::to_string(index);
}

}  // namespace

GaugeStream::GaugeStream(GeometryPtr geom, Params params)
    : params_(params),
      current_(disordered_gauge<double>(std::move(geom), params.roughness,
                                        params.seed)),
      id_(markov_id(params.seed, 0)) {}

GaugeStream::GaugeStream(std::vector<std::string> paths)
    : paths_(std::move(paths)),
      current_(load_gauge(first_path(paths_))),
      id_(paths_.front()) {}

bool GaugeStream::has_next() const {
  return paths_.empty() ||
         static_cast<size_t>(index_) + 1 < paths_.size();
}

const GaugeField<double>& GaugeStream::advance() {
  if (!paths_.empty()) {
    if (!has_next())
      throw std::out_of_range("GaugeStream: recorded sequence exhausted (" +
                              std::to_string(paths_.size()) +
                              " configurations)");
    ++index_;
    current_ = load_gauge(paths_[static_cast<size_t>(index_)]);
    id_ = paths_[static_cast<size_t>(index_)];
    return current_;
  }
  ++index_;
  if (params_.step > 0) {
    // Markov-like update: every link takes a small random rotation, then
    // the relaxation sweeps restore spatial smoothness — successive
    // configurations stay correlated with an autocorrelation set by `step`.
    const auto& g = *current_.geometry();
    const SiteRng rng(params_.seed +
                      0x9E3779B97F4A7C15ull *
                          static_cast<std::uint64_t>(index_));
    for (int mu = 0; mu < kNDim; ++mu)
      for (long s = 0; s < g.volume(); ++s) {
        Su3<double> u = random_su3_near_identity<double>(
                            rng, s, 1000 * (mu + 1), params_.step) *
                        current_.link(mu, s);
        reunitarize(u);
        current_.link(mu, s) = u;
      }
    relax_gauge(current_, params_.sweeps);
  }
  id_ = markov_id(params_.seed, index_);
  return current_;
}

// Explicit instantiations.
template GaugeField<double> unit_gauge<double>(GeometryPtr);
template GaugeField<float> unit_gauge<float>(GeometryPtr);
template GaugeField<double> random_gauge<double>(GeometryPtr, std::uint64_t);
template GaugeField<float> random_gauge<float>(GeometryPtr, std::uint64_t);
template GaugeField<double> disordered_gauge<double>(GeometryPtr, double,
                                                     std::uint64_t, int);
template GaugeField<float> disordered_gauge<float>(GeometryPtr, double,
                                                   std::uint64_t, int);
template double average_plaquette<double>(const GaugeField<double>&);
template double average_plaquette<float>(const GaugeField<float>&);
template void relax_gauge<double>(GaugeField<double>&, int);
template void relax_gauge<float>(GaugeField<float>&, int);

}  // namespace qmg
