#include "gauge/ensemble.h"

#include <cstdio>
#include <stdexcept>

#include "util/rng.h"

namespace qmg {

template <typename T>
GaugeField<T> unit_gauge(GeometryPtr geom) {
  return GaugeField<T>(std::move(geom));
}

template <typename T>
GaugeField<T> random_gauge(GeometryPtr geom, std::uint64_t seed) {
  GaugeField<T> gauge(std::move(geom));
  const SiteRng rng(seed);
  const auto& g = *gauge.geometry();
  for (int mu = 0; mu < kNDim; ++mu)
    for (long s = 0; s < g.volume(); ++s)
      gauge.link(mu, s) = random_su3<T>(rng, s, 100 * mu);
  return gauge;
}

template <typename T>
GaugeField<T> disordered_gauge(GeometryPtr geom, double roughness,
                               std::uint64_t seed, int sweeps) {
  GaugeField<T> gauge(std::move(geom));
  if (roughness <= 0.0) return gauge;
  const auto& g = *gauge.geometry();
  const T eps = static_cast<T>(roughness);
  const SiteRng rng(seed);
  for (int mu = 0; mu < kNDim; ++mu)
    for (long s = 0; s < g.volume(); ++s)
      gauge.link(mu, s) =
          random_su3_near_identity<T>(rng, s, 1000 * (mu + 1), eps);

  // Relaxation sweeps: replace each link by the reunitarized average with
  // its "staple-free" neighbors along mu, introducing smoothness akin to APE
  // smearing so the ensemble is not pure white noise.
  for (int sweep = 0; sweep < sweeps; ++sweep) {
    GaugeField<T> next = gauge;
    for (int mu = 0; mu < kNDim; ++mu)
      for (long s = 0; s < g.volume(); ++s) {
        Su3<T> avg = gauge.link(mu, s) * T(2);
        for (int nu = 0; nu < kNDim; ++nu) {
          if (nu == mu) continue;
          avg += gauge.link(mu, g.neighbor_fwd(s, nu)) * T(0.5);
          avg += gauge.link(mu, g.neighbor_bwd(s, nu)) * T(0.5);
        }
        reunitarize(avg);
        next.link(mu, s) = avg;
      }
    gauge = std::move(next);
  }
  return gauge;
}

template <typename T>
double average_plaquette(const GaugeField<T>& gauge) {
  const auto& g = *gauge.geometry();
  double sum = 0;
  long count = 0;
  for (long s = 0; s < g.volume(); ++s)
    for (int mu = 0; mu < kNDim; ++mu)
      for (int nu = mu + 1; nu < kNDim; ++nu) {
        // P = U_mu(x) U_nu(x+mu) U_mu(x+nu)^dag U_nu(x)^dag
        const Su3<T> p = gauge.link(mu, s) *
                         gauge.link(nu, g.neighbor_fwd(s, mu)) *
                         adjoint(gauge.link(mu, g.neighbor_fwd(s, nu))) *
                         adjoint(gauge.link(nu, s));
        sum += trace(p).re / 3.0;
        ++count;
      }
  return sum / static_cast<double>(count);
}

void save_gauge(const GaugeField<double>& gauge, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) throw std::runtime_error("cannot open " + path + " for writing");
  const auto& g = *gauge.geometry();
  const char magic[8] = {'q', 'm', 'g', 'G', 'A', 'U', 'G', 'E'};
  std::fwrite(magic, 1, 8, f);
  std::int64_t dims[4];
  for (int mu = 0; mu < 4; ++mu) dims[mu] = g.dim(mu);
  std::fwrite(dims, sizeof(std::int64_t), 4, f);
  const double aniso = gauge.anisotropy();
  std::fwrite(&aniso, sizeof(double), 1, f);
  for (int mu = 0; mu < kNDim; ++mu)
    for (long s = 0; s < g.volume(); ++s)
      std::fwrite(gauge.link(mu, s).e.data(), sizeof(complexd), 9, f);
  std::fclose(f);
}

GaugeField<double> load_gauge(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw std::runtime_error("cannot open " + path);
  char magic[8];
  if (std::fread(magic, 1, 8, f) != 8 || std::string(magic, 8) != "qmgGAUGE") {
    std::fclose(f);
    throw std::runtime_error("bad gauge file header in " + path);
  }
  std::int64_t dims[4];
  if (std::fread(dims, sizeof(std::int64_t), 4, f) != 4) {
    std::fclose(f);
    throw std::runtime_error("truncated gauge file " + path);
  }
  double aniso = 1.0;
  if (std::fread(&aniso, sizeof(double), 1, f) != 1) {
    std::fclose(f);
    throw std::runtime_error("truncated gauge file " + path);
  }
  auto geom = make_geometry(Coord{static_cast<int>(dims[0]),
                                  static_cast<int>(dims[1]),
                                  static_cast<int>(dims[2]),
                                  static_cast<int>(dims[3])});
  GaugeField<double> gauge(geom);
  gauge.set_anisotropy(aniso);
  for (int mu = 0; mu < kNDim; ++mu)
    for (long s = 0; s < geom->volume(); ++s) {
      if (std::fread(gauge.link(mu, s).e.data(), sizeof(complexd), 9, f) != 9) {
        std::fclose(f);
        throw std::runtime_error("truncated gauge file " + path);
      }
    }
  std::fclose(f);
  return gauge;
}

// Explicit instantiations.
template GaugeField<double> unit_gauge<double>(GeometryPtr);
template GaugeField<float> unit_gauge<float>(GeometryPtr);
template GaugeField<double> random_gauge<double>(GeometryPtr, std::uint64_t);
template GaugeField<float> random_gauge<float>(GeometryPtr, std::uint64_t);
template GaugeField<double> disordered_gauge<double>(GeometryPtr, double,
                                                     std::uint64_t, int);
template GaugeField<float> disordered_gauge<float>(GeometryPtr, double,
                                                   std::uint64_t, int);
template double average_plaquette<double>(const GaugeField<double>&);
template double average_plaquette<float>(const GaugeField<float>&);

}  // namespace qmg
