#pragma once
// Network and node models for the Titan-scale strong-scaling simulation
// (paper section 7).  Titan nodes hold one Tesla K20X each, connected by a
// Cray Gemini 3D torus; GPU buffers cross PCIe to the host before MPI
// (section 6.5: a single D2H copy, MPI exchange, single H2D copy, no
// compute/comms overlap on the coarse grids).

#include "gpusim/device.h"
#include "lattice/geometry.h"

namespace qmg {

struct NetworkSpec {
  double latency_us = 6.0;       // MPI point-to-point latency
  double bandwidth_gbs = 4.5;    // effective per-link bandwidth
  double allreduce_stage_us = 12.0;  // cost per log2(N) stage of allreduce
  double noise_fraction = 0.0;   // cross-job contention jitter (section 7.2)

  // Node-placement effect (section 7.2): jobs that no longer fit in one
  // cabinet see degraded effective bandwidth and latency from longer torus
  // routes and cross-job pollution.  This is what makes the
  // communications-limited BiCGStab *slow down* from 64 to 128 nodes on
  // Iso64 while the latency-limited MG merely flattens.
  int cabinet_nodes = 96;            // XK7 nodes per Titan cabinet
  double multi_cabinet_bw_factor = 0.4;
  double multi_cabinet_latency_factor = 1.35;

  double effective_bandwidth(int nodes) const {
    return bandwidth_gbs * (nodes > cabinet_nodes ? multi_cabinet_bw_factor
                                                  : 1.0);
  }
  double latency_scale(int nodes) const {
    return (nodes > cabinet_nodes ? multi_cabinet_latency_factor : 1.0) *
           (1.0 + noise_fraction);
  }

  static NetworkSpec titan_gemini() { return NetworkSpec{}; }
};

struct NodeSpec {
  DeviceSpec device = DeviceSpec::tesla_k20x();
  double pcie_gbs = 6.0;  // effective host<->device bandwidth

  static NodeSpec titan_xk7() { return NodeSpec{}; }
};

/// How a global lattice is split across a node grid.
struct JobPartition {
  Coord global{};
  Coord grid{1, 1, 1, 1};  // nodes per dimension

  int nodes() const { return grid[0] * grid[1] * grid[2] * grid[3]; }

  Coord local_dims() const {
    Coord l;
    for (int mu = 0; mu < kNDim; ++mu) l[mu] = global[mu] / grid[mu];
    return l;
  }

  long local_volume() const {
    const Coord l = local_dims();
    return static_cast<long>(l[0]) * l[1] * l[2] * l[3];
  }

  /// Surface sites of the local volume orthogonal to mu.
  long local_surface(int mu) const {
    return local_volume() / local_dims()[mu];
  }

  bool split(int mu) const { return grid[mu] > 1; }

  /// Greedy partition of `global` over `nodes` (split the largest extents
  /// first, keeping local dims integral) — how production jobs are laid out.
  /// `constraint` (defaults to `global`) must also remain divisible by the
  /// node grid: passing the coarsest-level dimensions keeps every MG level
  /// partitionable, reproducing the paper's "2^4 sites per node" floor.
  static JobPartition make(const Coord& global, int nodes,
                           const Coord& constraint = {0, 0, 0, 0});

  /// The lattice partition at a coarser level (same node grid).
  JobPartition coarsened(const Coord& coarse_global) const {
    JobPartition p;
    p.global = coarse_global;
    p.grid = grid;
    return p;
  }
};

}  // namespace qmg
