#include "cluster/solver_model.h"

#include <algorithm>

namespace qmg {

namespace {

/// Roofline-bound GFLOPS (no occupancy penalties) — the denominator of the
/// utilization estimate.
double roofline(const DeviceSpec& dev, const KernelWork& work) {
  const double ai = work.bytes > 0 ? work.flops / work.bytes : 1e9;
  return std::min(dev.peak_fp32_gflops,
                  dev.achievable_bw() * dev.stencil_bw_efficiency * ai);
}

}  // namespace

double BicgstabTrace::solve_seconds(const ClusterModel& model,
                                    const JobPartition& fine) const {
  const double matvec = model.wilson_seconds(fine, precision);
  const double red = model.reduction_seconds(fine, dof_complex(), precision);
  const double blas = model.blas_seconds(fine, dof_complex(), precision);
  return iterations * (matvecs_per_iter * matvec +
                       reductions_per_iter * red + blas_per_iter * blas);
}

double BicgstabTrace::utilization(const ClusterModel& model,
                                  const JobPartition& fine) const {
  const auto work = wilson_work(fine.local_volume(), precision, 8);
  const double kernel_eff = estimate_gflops(model.node().device, work) /
                            roofline(model.node().device, work);
  // Time fraction the device actually computes (vs reductions/halo idle).
  const double compute =
      matvecs_per_iter * model.wilson_compute_seconds(fine, precision) +
      blas_per_iter * model.blas_seconds(fine, dof_complex(), precision);
  const double total =
      matvecs_per_iter * model.wilson_seconds(fine, precision) +
      reductions_per_iter *
          model.reduction_seconds(fine, dof_complex(), precision) +
      blas_per_iter * model.blas_seconds(fine, dof_complex(), precision);
  return kernel_eff * (total > 0 ? compute / total : 1.0);
}

MgBreakdown MgTrace::solve_breakdown(const ClusterModel& model,
                                     const JobPartition& fine) const {
  MgBreakdown out;
  out.level_seconds.assign(levels.size(), 0.0);
  double util_weighted = 0;

  for (size_t l = 0; l < levels.size(); ++l) {
    const MgLevelTrace& lvl = levels[l];
    const JobPartition part = fine.coarsened(lvl.global_dims);

    double matvec, matvec_compute, eff;
    if (lvl.fine) {
      matvec = model.wilson_seconds(part, precision);
      matvec_compute = model.wilson_compute_seconds(part, precision);
      const auto work = wilson_work(part.local_volume(), precision);
      eff = estimate_gflops(model.node().device, work) /
            roofline(model.node().device, work);
    } else {
      matvec = model.coarse_seconds(part, lvl.block_dim, precision);
      matvec_compute =
          model.coarse_compute_seconds(part, lvl.block_dim, precision);
      CoarseKernelConfig best;
      const double achieved =
          best_coarse_gflops(model.node().device, part.local_volume(),
                             lvl.block_dim, Strategy::DotProduct, &best);
      eff = achieved /
            roofline(model.node().device,
                     coarse_op_work(part.local_volume(), lvl.block_dim, best));
    }

    const double red = model.reduction_seconds(part, lvl.dof, precision);
    const double blas = model.blas_seconds(part, lvl.dof, precision);
    double level_time = outer_iterations *
                        (lvl.matvecs_per_outer * matvec +
                         lvl.reductions_per_outer * red +
                         lvl.blas_per_outer * blas);
    // Compute-active fraction of the level (allreduce and unoverlapped halo
    // leave the device idle — what makes MG draw less power, section 7.2).
    const double level_compute =
        outer_iterations * (lvl.matvecs_per_outer * matvec_compute +
                            lvl.blas_per_outer * blas);
    if (lvl.nvec_next > 0) {
      level_time += outer_iterations * lvl.transfers_per_outer * 2.0 *
                    model.transfer_seconds(part, lvl.dof, lvl.nvec_next,
                                           precision);
    }
    out.level_seconds[l] = level_time;
    out.total += level_time;
    util_weighted += level_compute * eff;
  }
  out.utilization = out.total > 0 ? util_weighted / out.total : 0;
  return out;
}

}  // namespace qmg
