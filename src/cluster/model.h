#pragma once
// Cluster cost model: per-kernel node times (from the device model) plus
// halo-exchange and global-reduction network costs.  These compose into the
// per-iteration solver traces that regenerate Table 3 and Figs. 3-4.

#include "cluster/network.h"
#include "gpusim/kernels.h"

namespace qmg {

class ClusterModel {
 public:
  ClusterModel(NodeSpec node, NetworkSpec net)
      : node_(node), net_(net) {}

  const NodeSpec& node() const { return node_; }
  const NetworkSpec& net() const { return net_; }

  /// Halo exchange for an operator with `dof` complex components per site:
  /// pack kernel + D2H + MPI (latency + bytes/bw per split direction) + H2D.
  /// `overlap` subtracts the exchange behind the compute kernel (done on
  /// the fine grid, not on the coarse grids — section 6.5).
  double halo_seconds(const JobPartition& p, int dof, SimPrecision prec,
                      double compute_seconds, bool overlap) const;

  /// Fine-grid Wilson-Clover apply including halo exchange.
  double wilson_seconds(const JobPartition& p, SimPrecision prec,
                        int reconstruct = 8) const;
  /// Compute-only portion (no halo) — used for utilization accounting.
  double wilson_compute_seconds(const JobPartition& p, SimPrecision prec,
                                int reconstruct = 8) const;

  /// Coarse-operator apply (block dimension N = 2*nvec) including halo.
  double coarse_seconds(const JobPartition& p, int block_dim,
                        SimPrecision prec) const;
  double coarse_compute_seconds(const JobPartition& p, int block_dim,
                                SimPrecision prec) const;

  /// Global reduction: local tree reduction + allreduce over nodes.
  double reduction_seconds(const JobPartition& p, int dof,
                           SimPrecision prec) const;

  /// Streaming axpy-type update.
  double blas_seconds(const JobPartition& p, int dof, SimPrecision prec) const;

  /// Prolongation/restriction between levels (parallelized over the fine
  /// geometry; one PCIe crossing of the coarse field, section 5).
  double transfer_seconds(const JobPartition& fine, int fine_dof, int nvec,
                          SimPrecision prec) const;

  /// Allreduce latency across n nodes (the log N term of Fig. 4).
  double allreduce_seconds(int nodes) const;

 private:
  NodeSpec node_;
  NetworkSpec net_;
};

}  // namespace qmg
