#include "cluster/model.h"

#include <algorithm>
#include <cmath>

namespace qmg {

double ClusterModel::allreduce_seconds(int nodes) const {
  if (nodes <= 1) return 2e-6;  // device-side reduction result readback
  const double stages = std::ceil(std::log2(static_cast<double>(nodes)));
  return 2.0 * stages * net_.allreduce_stage_us * 1e-6 *
         net_.latency_scale(nodes);
}

double ClusterModel::halo_seconds(const JobPartition& p, int dof,
                                  SimPrecision prec, double compute_seconds,
                                  bool overlap) const {
  const double pb = 2 * bytes_per_real(prec);
  double total_bytes = 0;
  long total_surface = 0;
  int split_dims = 0;
  for (int mu = 0; mu < kNDim; ++mu) {
    if (!p.split(mu)) continue;
    ++split_dims;
    const long sites = p.local_surface(mu) * 2;  // both faces
    total_surface += sites;
    total_bytes += static_cast<double>(sites) * dof * pb;
  }
  if (split_dims == 0) return 0.0;

  // One fused packing kernel for all dimensions, one D2H copy, MPI, one
  // H2D copy (section 6.5's latency-minimizing scheme).
  const double pack = estimate_seconds(
      node_.device, halo_pack_work(total_surface, dof, prec));
  const double pcie = 2.0 * total_bytes / (node_.pcie_gbs * 1e9);
  const double mpi =
      2.0 * split_dims * net_.latency_us * 1e-6 *
          net_.latency_scale(p.nodes()) +
      total_bytes / (net_.effective_bandwidth(p.nodes()) * 1e9);
  const double exchange = pack + pcie + mpi;
  if (!overlap) return exchange;
  // Overlapped: only the part not hidden behind compute is visible.
  return std::max(0.0, exchange - compute_seconds);
}

double ClusterModel::wilson_compute_seconds(const JobPartition& p,
                                            SimPrecision prec,
                                            int reconstruct) const {
  return estimate_seconds(node_.device,
                          wilson_work(p.local_volume(), prec, reconstruct));
}

double ClusterModel::wilson_seconds(const JobPartition& p, SimPrecision prec,
                                    int reconstruct) const {
  const double compute = wilson_compute_seconds(p, prec, reconstruct);
  // Fine-grid halos carry spin-PROJECTED half spinors (6 of 12 components),
  // and the exchange is overlapped with interior compute.
  return compute + halo_seconds(p, 6, prec, compute, /*overlap=*/true);
}

double ClusterModel::coarse_compute_seconds(const JobPartition& p,
                                            int block_dim,
                                            SimPrecision prec) const {
  CoarseKernelConfig best;
  const double gflops = best_coarse_gflops(node_.device, p.local_volume(),
                                           block_dim, Strategy::DotProduct,
                                           &best);
  const auto work = coarse_op_work(p.local_volume(), block_dim, best, prec);
  return std::max(work.flops / (gflops * 1e9), 5e-6);
}

double ClusterModel::coarse_seconds(const JobPartition& p, int block_dim,
                                    SimPrecision prec) const {
  const double compute = coarse_compute_seconds(p, block_dim, prec);
  return compute +
         halo_seconds(p, block_dim, prec, compute, /*overlap=*/false);
}

double ClusterModel::reduction_seconds(const JobPartition& p, int dof,
                                       SimPrecision prec) const {
  const double local = estimate_seconds(
      node_.device,
      reduction_work(static_cast<double>(p.local_volume()) * dof, prec));
  return local + allreduce_seconds(p.nodes());
}

double ClusterModel::blas_seconds(const JobPartition& p, int dof,
                                  SimPrecision prec) const {
  return estimate_seconds(
      node_.device,
      blas_axpy_work(static_cast<double>(p.local_volume()) * dof, prec));
}

double ClusterModel::transfer_seconds(const JobPartition& fine, int fine_dof,
                                      int nvec, SimPrecision prec) const {
  const double kernel = estimate_seconds(
      node_.device,
      transfer_work(fine.local_volume(), fine_dof, nvec, prec));
  // The coarse-side field crosses PCIe once (restriction output /
  // prolongation input lives on the other processor in the heterogeneous
  // design of section 5; all-GPU execution still pays a kernel launch).
  return kernel + 5e-6;
}

}  // namespace qmg
