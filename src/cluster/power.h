#pragma once
// Node power model (paper section 7.2): the per-node power draw observed
// through nvidia-smi scales with how hard the GPU is actually driven.  MG
// sustains 3-5x fewer GFLOPS than BiCGStab on the same hardware, so it
// draws measurably less power (the paper reports 72 W vs 83 W on Iso48 at
// 48 nodes, ~15% less for MG).

namespace qmg {

struct PowerModel {
  // Calibrated against the paper's Iso48/48-node observation (83 W for
  // BiCGStab at ~0.61 modeled utilization, 72 W for MG at ~0.39).
  double idle_watts = 53.0;
  double dynamic_watts = 49.0;

  /// Average node power at a given time-weighted device utilization.
  double node_watts(double utilization) const {
    return idle_watts + dynamic_watts * utilization;
  }

  /// Energy (J) for a solve of the given duration.
  double solve_energy_joules(double utilization, double seconds,
                             int nodes) const {
    return node_watts(utilization) * seconds * nodes;
  }
};

}  // namespace qmg
