#include "cluster/network.h"

#include <stdexcept>

namespace qmg {

JobPartition JobPartition::make(const Coord& global, int nodes,
                                const Coord& constraint) {
  JobPartition p;
  p.global = global;
  Coord limit = constraint;
  if (limit[0] == 0) limit = global;

  int remaining = nodes;
  // Repeatedly split the direction with the largest local extent whose
  // constraint extent stays divisible.  Titan jobs are power-of-two node
  // counts (64..512) apart from the small partitions, which carry factors
  // of 3 and 5 absorbed by divisible lattice extents.
  auto try_factor = [&](int f) {
    int best_mu = -1;
    int best_extent = 0;
    for (int mu = 0; mu < kNDim; ++mu) {
      const int local = p.global[mu] / p.grid[mu];
      const int climit = limit[mu] / p.grid[mu];
      if (local % f == 0 && climit % f == 0 && climit / f >= 1 &&
          local > best_extent) {
        best_extent = local;
        best_mu = mu;
      }
    }
    if (best_mu < 0) return false;
    p.grid[best_mu] *= f;
    remaining /= f;
    return true;
  };

  while (remaining > 1) {
    if (remaining % 2 == 0 && try_factor(2)) continue;
    bool placed = false;
    for (int f = 3; f <= remaining && !placed; ++f) {
      if (remaining % f != 0) continue;
      placed = try_factor(f);
    }
    if (!placed)
      throw std::invalid_argument("cannot partition lattice over nodes");
  }
  return p;
}

}  // namespace qmg
