#pragma once
// Solver execution traces on the simulated cluster.
//
// The numerical behaviour (iteration counts, per-outer-iteration workload
// at every level) is MEASURED by running the real solvers on scaled-down
// proxy lattices; these traces then map that workload onto the Titan model
// at the paper's lattice sizes and node counts, producing the wallclock
// and per-level breakdowns of Table 3 and Figs. 3-4.

#include <vector>

#include "cluster/model.h"

namespace qmg {

/// Mixed-precision BiCGStab (the baseline of Table 3): red-black
/// preconditioned, half-precision inner storage with reconstruct-8.
struct BicgstabTrace {
  double iterations = 0;       // measured on the proxy lattice
  double matvecs_per_iter = 2.0;    // Schur applies per BiCGStab iteration
  double reductions_per_iter = 4.0;
  double blas_per_iter = 8.0;
  SimPrecision precision = SimPrecision::Half;

  /// Complex components per fine site (Wilson spinor).
  static int dof_complex() { return 12; }

  double solve_seconds(const ClusterModel& model,
                       const JobPartition& fine) const;
  /// Time-weighted device utilization (for the power model).
  double utilization(const ClusterModel& model,
                     const JobPartition& fine) const;
};

/// Workload of one MG level per outer (fine-grid GCR) iteration.
struct MgLevelTrace {
  Coord global_dims{};
  bool fine = true;   // Wilson-Clover kernel vs coarse-operator kernel
  int dof = 12;       // complex components per site
  int block_dim = 0;  // 2*nvec for coarse levels
  double matvecs_per_outer = 0;     // measured: operator applies
  double reductions_per_outer = 0;  // estimated from Krylov structure
  double blas_per_outer = 0;
  double transfers_per_outer = 0;  // restrict+prolongate pairs to next level
  int nvec_next = 0;               // transfer width to the next level
};

struct MgBreakdown {
  std::vector<double> level_seconds;  // exclusive time per level, per solve
  double total = 0;
  double utilization = 0;  // time-weighted device utilization
};

struct MgTrace {
  std::vector<MgLevelTrace> levels;
  double outer_iterations = 0;  // measured on the proxy lattice
  SimPrecision precision = SimPrecision::Single;

  MgBreakdown solve_breakdown(const ClusterModel& model,
                              const JobPartition& fine) const;
  double solve_seconds(const ClusterModel& model,
                       const JobPartition& fine) const {
    return solve_breakdown(model, fine).total;
  }
};

}  // namespace qmg
