#pragma once
// Geometric aggregation: partition the fine lattice into regular,
// non-overlapping hypercubic blocks (paper section 3.4).  Each block becomes
// one coarse-grid site; the fine sites of a block (together with a chirality)
// form one aggregate for the adaptive-MG block orthonormalization.

#include <memory>
#include <vector>

#include "lattice/geometry.h"

namespace qmg {

class BlockMap {
 public:
  /// block = aggregate extent in each dimension; must divide the fine dims.
  BlockMap(GeometryPtr fine, const Coord& block);

  const GeometryPtr& fine() const { return fine_; }
  const GeometryPtr& coarse() const { return coarse_; }
  const Coord& block() const { return block_; }
  long block_volume() const { return block_volume_; }

  /// Coarse-site index that fine site idx belongs to.
  long coarse_site(long fine_idx) const { return coarse_of_fine_[fine_idx]; }

  /// Fine sites belonging to coarse site c (size == block_volume()).
  const std::vector<std::int32_t>& block_sites(long coarse_idx) const {
    return sites_of_block_[coarse_idx];
  }

 private:
  GeometryPtr fine_;
  GeometryPtr coarse_;
  Coord block_;
  long block_volume_;
  std::vector<std::int32_t> coarse_of_fine_;
  std::vector<std::vector<std::int32_t>> sites_of_block_;
};

}  // namespace qmg
