#pragma once
// 4D lattice geometry: index maps, even-odd (red-black) checkerboarding,
// neighbor tables with periodic wrap, and the thread-coordinate mapping of
// paper Listing 2.

#include <array>
#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

namespace qmg {

inline constexpr int kNDim = 4;

using Coord = std::array<int, kNDim>;

/// Geometry of a periodic 4D lattice.  Sites are identified by their
/// lexicographic index with x[0] fastest (exactly the mapping of Listing 2).
/// Even-odd indexing splits sites by parity (x+y+z+t mod 2) for red-black
/// preconditioning; within a parity, sites keep lexicographic order.
class LatticeGeometry {
 public:
  explicit LatticeGeometry(const Coord& dims);

  const Coord& dims() const { return dims_; }
  int dim(int mu) const { return dims_[mu]; }
  long volume() const { return volume_; }
  long half_volume() const { return volume_ / 2; }

  /// Listing 2: one-dimensional index -> lattice coordinates.
  Coord coords(long idx) const {
    Coord x;
    long tmp1 = idx / dims_[0];
    long tmp2 = tmp1 / dims_[1];
    x[0] = static_cast<int>(idx - tmp1 * dims_[0]);
    x[1] = static_cast<int>(tmp1 - tmp2 * dims_[1]);
    x[3] = static_cast<int>(tmp2 / dims_[2]);
    x[2] = static_cast<int>(tmp2 - static_cast<long>(x[3]) * dims_[2]);
    return x;
  }

  long index(const Coord& x) const {
    return ((static_cast<long>(x[3]) * dims_[2] + x[2]) * dims_[1] + x[1]) *
               dims_[0] +
           x[0];
  }

  int parity(long idx) const { return parity_[idx]; }
  static int parity_of(const Coord& x) {
    return (x[0] + x[1] + x[2] + x[3]) & 1;
  }

  /// Index within the site's parity sublattice (0 .. V/2-1).
  long cb_index(long idx) const { return cb_of_lex_[idx]; }
  /// Full-lattice index of checkerboard site (parity, cb).
  long full_index(int parity, long cb) const {
    return lex_of_cb_[parity][cb];
  }

  /// Full-lattice index of the forward/backward neighbor in direction mu.
  long neighbor_fwd(long idx, int mu) const { return fwd_[mu][idx]; }
  long neighbor_bwd(long idx, int mu) const { return bwd_[mu][idx]; }

  /// Number of sites on the surface orthogonal to mu (halo size per face).
  long surface_sites(int mu) const { return volume_ / dims_[mu]; }

 private:
  Coord dims_;
  long volume_;
  std::vector<std::uint8_t> parity_;
  std::vector<std::int32_t> cb_of_lex_;
  std::array<std::vector<std::int32_t>, 2> lex_of_cb_;
  std::array<std::vector<std::int32_t>, kNDim> fwd_;
  std::array<std::vector<std::int32_t>, kNDim> bwd_;
};

using GeometryPtr = std::shared_ptr<const LatticeGeometry>;

inline GeometryPtr make_geometry(const Coord& dims) {
  return std::make_shared<LatticeGeometry>(dims);
}

inline GeometryPtr make_geometry(int ls, int lt) {
  return make_geometry(Coord{ls, ls, ls, lt});
}

}  // namespace qmg
