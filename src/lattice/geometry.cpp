#include "lattice/geometry.h"

#include <stdexcept>

namespace qmg {

LatticeGeometry::LatticeGeometry(const Coord& dims) : dims_(dims) {
  volume_ = 1;
  for (int mu = 0; mu < kNDim; ++mu) {
    if (dims_[mu] < 1) throw std::invalid_argument("lattice dim must be >= 1");
    volume_ *= dims_[mu];
  }
  // Red-black decomposition needs an even number of sites overall so the two
  // checkerboards have equal size; we additionally require even total volume.
  if (volume_ % 2 != 0)
    throw std::invalid_argument("lattice volume must be even for red-black");

  parity_.resize(volume_);
  cb_of_lex_.resize(volume_);
  lex_of_cb_[0].reserve(volume_ / 2);
  lex_of_cb_[1].reserve(volume_ / 2);

  for (long idx = 0; idx < volume_; ++idx) {
    const Coord x = coords(idx);
    const int p = parity_of(x);
    parity_[idx] = static_cast<std::uint8_t>(p);
    cb_of_lex_[idx] = static_cast<std::int32_t>(lex_of_cb_[p].size());
    lex_of_cb_[p].push_back(static_cast<std::int32_t>(idx));
  }

  for (int mu = 0; mu < kNDim; ++mu) {
    fwd_[mu].resize(volume_);
    bwd_[mu].resize(volume_);
  }
  for (long idx = 0; idx < volume_; ++idx) {
    const Coord x = coords(idx);
    for (int mu = 0; mu < kNDim; ++mu) {
      Coord xf = x;
      Coord xb = x;
      xf[mu] = (x[mu] + 1) % dims_[mu];
      xb[mu] = (x[mu] - 1 + dims_[mu]) % dims_[mu];
      fwd_[mu][idx] = static_cast<std::int32_t>(index(xf));
      bwd_[mu][idx] = static_cast<std::int32_t>(index(xb));
    }
  }
}

}  // namespace qmg
