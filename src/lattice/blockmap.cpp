#include "lattice/blockmap.h"

#include <stdexcept>

namespace qmg {

BlockMap::BlockMap(GeometryPtr fine, const Coord& block)
    : fine_(std::move(fine)), block_(block) {
  Coord cdims;
  block_volume_ = 1;
  for (int mu = 0; mu < kNDim; ++mu) {
    if (block_[mu] < 1 || fine_->dim(mu) % block_[mu] != 0)
      throw std::invalid_argument(
          "block extent must divide the fine lattice dimension");
    cdims[mu] = fine_->dim(mu) / block_[mu];
    block_volume_ *= block_[mu];
  }
  coarse_ = make_geometry(cdims);

  coarse_of_fine_.resize(fine_->volume());
  sites_of_block_.resize(coarse_->volume());
  for (auto& v : sites_of_block_) v.reserve(block_volume_);

  for (long idx = 0; idx < fine_->volume(); ++idx) {
    const Coord x = fine_->coords(idx);
    Coord cx;
    for (int mu = 0; mu < kNDim; ++mu) cx[mu] = x[mu] / block_[mu];
    const long c = coarse_->index(cx);
    coarse_of_fine_[idx] = static_cast<std::int32_t>(c);
    sites_of_block_[c].push_back(static_cast<std::int32_t>(idx));
  }
}

}  // namespace qmg
