#include "util/logger.h"

namespace qmg {

namespace {
LogLevel g_level = LogLevel::Summary;
}

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

namespace detail {
void vlogf(LogLevel level, const char* fmt, va_list args) {
  if (static_cast<int>(level) > static_cast<int>(g_level)) return;
  std::vfprintf(stdout, fmt, args);
  std::fflush(stdout);
}
}  // namespace detail

void logf(LogLevel level, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  detail::vlogf(level, fmt, args);
  va_end(args);
}

}  // namespace qmg
