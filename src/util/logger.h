#pragma once
// Minimal leveled logger.  Verbosity is a process-global setting, mirroring
// QUDA's QUDA_VERBOSITY environment control.

#include <cstdarg>
#include <cstdio>

namespace qmg {

enum class LogLevel { Silent = 0, Summary = 1, Verbose = 2, Debug = 3 };

LogLevel log_level();
void set_log_level(LogLevel level);

/// printf-style logging gated on the global level.
void logf(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

inline void log_summary(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));
inline void log_verbose(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

namespace detail {
void vlogf(LogLevel level, const char* fmt, va_list args);
}

inline void log_summary(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  detail::vlogf(LogLevel::Summary, fmt, args);
  va_end(args);
}

inline void log_verbose(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  detail::vlogf(LogLevel::Verbose, fmt, args);
  va_end(args);
}

}  // namespace qmg
