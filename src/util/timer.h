#pragma once
// Wall-clock timing utilities and a lightweight accumulating profiler.

#include <chrono>
#include <map>
#include <string>

namespace qmg {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() { start(); }
  void start() { t0_ = clock::now(); }
  /// Seconds elapsed since the last start().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - t0_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point t0_;
};

/// Named accumulator: total seconds and call counts per region.  Not
/// thread-safe by design — profiling regions are coarse (solver phases).
class Profiler {
 public:
  struct Entry {
    double seconds = 0.0;
    long calls = 0;
  };

  void add(const std::string& name, double seconds) {
    auto& e = entries_[name];
    e.seconds += seconds;
    e.calls += 1;
  }

  const std::map<std::string, Entry>& entries() const { return entries_; }
  void clear() { entries_.clear(); }

  double total(const std::string& name) const {
    auto it = entries_.find(name);
    return it == entries_.end() ? 0.0 : it->second.seconds;
  }

 private:
  std::map<std::string, Entry> entries_;
};

/// RAII region timer feeding a Profiler.
class ScopedTimer {
 public:
  ScopedTimer(Profiler& prof, std::string name)
      : prof_(prof), name_(std::move(name)) {}
  ~ScopedTimer() { prof_.add(name_, timer_.seconds()); }

 private:
  Profiler& prof_;
  std::string name_;
  Timer timer_;
};

}  // namespace qmg
