#pragma once
// Wall-clock timing utilities and a lightweight accumulating profiler.

#include <chrono>
#include <map>
#include <string>

#include "util/thread_annotations.h"

namespace qmg {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() { start(); }
  void start() { t0_ = clock::now(); }
  /// Seconds elapsed since the last start().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - t0_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point t0_;
};

/// Named accumulator: total seconds and call counts per region.
/// Accumulation is mutex-guarded so regions timed on pool workers (the
/// Threaded dispatch backend) keep the per-level Fig. 4 profile correct;
/// the guard is a compile-time contract (QMG_GUARDED_BY) under the CI
/// thread-safety build.
class Profiler {
 public:
  struct Entry {
    double seconds = 0.0;
    long calls = 0;
  };

  void add(const std::string& name, double seconds) QMG_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    auto& e = entries_[name];
    e.seconds += seconds;
    e.calls += 1;
  }

  /// Snapshot of every region, taken under the lock.  (Previously returned
  /// an unlocked reference with a "read only between solves" caveat — the
  /// kind of verbal contract the static analysis exists to retire.)
  std::map<std::string, Entry> entries() const QMG_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return entries_;
  }

  void clear() QMG_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    entries_.clear();
  }

  double total(const std::string& name) const QMG_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    auto it = entries_.find(name);
    return it == entries_.end() ? 0.0 : it->second.seconds;
  }

 private:
  mutable Mutex mutex_;
  std::map<std::string, Entry> entries_ QMG_GUARDED_BY(mutex_);
};

/// RAII region timer feeding a Profiler.
class ScopedTimer {
 public:
  ScopedTimer(Profiler& prof, std::string name)
      : prof_(prof), name_(std::move(name)) {}
  ~ScopedTimer() { prof_.add(name_, timer_.seconds()); }

 private:
  Profiler& prof_;
  std::string name_;
  Timer timer_;
};

}  // namespace qmg
