#pragma once
// Clang thread-safety annotations plus the annotated synchronization
// primitives every mutex-bearing component of the library uses.  Under
// Clang the macros expand to the static thread-safety-analysis attributes,
// so lock discipline — which fields a mutex guards, which methods require
// or acquire it — is checked at COMPILE TIME by the CI static-analysis job
// (-Wthread-safety -Werror).  Under any other compiler they expand to
// nothing and qmg::Mutex is a zero-cost std::mutex wrapper.
//
// The runtime contracts these annotations enforce statically are the ones
// the TSan CI job can only check on executed interleavings: the ThreadPool
// park/launch protocol, the CommWorker submit/wait pairing, the SolveQueue
// dispatcher + ticket shared state, the TuneCache process-wide maps, and
// the Profiler accumulators.
//
// Usage:
//   Mutex mu_;
//   int value_ QMG_GUARDED_BY(mu_);
//   void touch() { MutexLock lock(mu_); ++value_; }
//
// Condition variables use CondVar (std::condition_variable_any), which
// parks on the annotated MutexLock directly.  Write wait loops in the
// enclosing function body — `while (!ready_) cv_.wait(lock);` — rather
// than with a predicate lambda: the analysis treats a lambda as a separate
// function and cannot see that the capability is held inside it.

#include <condition_variable>
#include <mutex>

// Expand to Clang's thread-safety attributes when the analysis is
// available; to nothing otherwise (GCC parses but does not implement
// them, so emitting the attributes there only produces -Wattributes
// noise).
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define QMG_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef QMG_THREAD_ANNOTATION
#define QMG_THREAD_ANNOTATION(x)  // no-op off-Clang
#endif

/// Class attribute: this type is a synchronization capability (a mutex).
#define QMG_CAPABILITY(x) QMG_THREAD_ANNOTATION(capability(x))

/// Class attribute: RAII object that acquires a capability for its scope.
#define QMG_SCOPED_CAPABILITY QMG_THREAD_ANNOTATION(scoped_lockable)

/// Field attribute: reads and writes require holding the given mutex.
#define QMG_GUARDED_BY(x) QMG_THREAD_ANNOTATION(guarded_by(x))

/// Field attribute: the pointed-to data is guarded by the given mutex.
#define QMG_PT_GUARDED_BY(x) QMG_THREAD_ANNOTATION(pt_guarded_by(x))

/// Lock-ordering declarations between capabilities.
#define QMG_ACQUIRED_BEFORE(...) \
  QMG_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define QMG_ACQUIRED_AFTER(...) \
  QMG_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function attribute: the caller must hold the given capability.
#define QMG_REQUIRES(...) \
  QMG_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define QMG_REQUIRES_SHARED(...) \
  QMG_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function attribute: acquires the capability (held on return).
#define QMG_ACQUIRE(...) \
  QMG_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define QMG_ACQUIRE_SHARED(...) \
  QMG_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function attribute: releases the capability (must be held on entry).
#define QMG_RELEASE(...) \
  QMG_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define QMG_RELEASE_SHARED(...) \
  QMG_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function attribute: acquires the capability iff the return value equals
/// the first argument.
#define QMG_TRY_ACQUIRE(...) \
  QMG_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function attribute: the caller must NOT hold the given capability
/// (deadlock prevention for functions that acquire it themselves).
#define QMG_EXCLUDES(...) QMG_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function attribute: returns a reference to the given capability.
#define QMG_RETURN_CAPABILITY(x) QMG_THREAD_ANNOTATION(lock_returned(x))

/// Function attribute: opt this one function out of the analysis.  A
/// targeted escape hatch for code whose locking is correct but outside
/// what the analysis can express — every use needs a comment saying why.
#define QMG_NO_THREAD_SAFETY_ANALYSIS \
  QMG_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace qmg {

/// Annotated std::mutex: the capability type the analysis tracks.
/// (std::mutex itself carries no annotations under libstdc++, so locks
/// taken on it are invisible to the analysis; this wrapper is what makes
/// GUARDED_BY enforceable.)  Zero-cost: the wrapper adds no state.
class QMG_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() QMG_ACQUIRE() { m_.lock(); }
  void unlock() QMG_RELEASE() { m_.unlock(); }
  bool try_lock() QMG_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;
};

/// RAII lock on a Mutex, annotated as a scoped capability.  Also exposes
/// re-lockable lock()/unlock() — both for CondVar (whose wait() parks by
/// unlocking and re-locking the MutexLock it is handed) and for the
/// drop-the-lock-around-a-long-call pattern (SolveQueue's dispatcher).
class QMG_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) QMG_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() QMG_RELEASE() {
    if (held_) mu_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void lock() QMG_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }
  void unlock() QMG_RELEASE() {
    held_ = false;
    mu_.unlock();
  }

 private:
  Mutex& mu_;
  bool held_ = true;
};

/// Condition variable that parks on a MutexLock.  condition_variable_any
/// accepts any BasicLockable, so waits keep the annotated lock object —
/// and therefore the capability, which the analysis considers held across
/// the wait, exactly as with std::condition_variable + unique_lock.
using CondVar = std::condition_variable_any;

}  // namespace qmg
