#pragma once
// Random number generation for qmg.
//
// Two generators are provided:
//  - Xoshiro256StarStar: a fast sequential PRNG used for driver-level choices
//    (e.g. random initial guesses) where traversal order is fixed.
//  - SiteRng: a counter-based (Philox-style, here splitmix-hash based)
//    stateless generator keyed by (seed, site, slot).  Field fills use this
//    so the generated field is identical regardless of the order in which
//    sites are visited or how loops are parallelized — the same guarantee
//    QUDA needs for its GPU-side curand fills.

#include <cstdint>
#include <cmath>

namespace qmg {

/// SplitMix64 step: the standard 64-bit finalizing hash / stream generator.
inline constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 256-bit state.
class Xoshiro256StarStar {
 public:
  explicit Xoshiro256StarStar(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Standard normal via Box-Muller (one value per call; no caching so the
  /// stream is stateless with respect to consumer call patterns).
  double normal() {
    double u1 = uniform();
    double u2 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

/// Stateless counter-based generator: every (seed, site, slot) triple maps to
/// an independent uniform/normal stream position.  Used for reproducible
/// lattice-wide field fills independent of traversal order.
class SiteRng {
 public:
  explicit SiteRng(std::uint64_t seed) : seed_(seed) {}

  std::uint64_t bits(std::uint64_t site, std::uint64_t slot) const {
    std::uint64_t s = seed_ ^ (site * 0x9e3779b97f4a7c15ULL) ^
                      (slot * 0xc2b2ae3d27d4eb4fULL);
    // Two rounds of splitmix for avalanche across the combined key.
    (void)splitmix64(s);
    return splitmix64(s);
  }

  double uniform(std::uint64_t site, std::uint64_t slot) const {
    return static_cast<double>(bits(site, slot) >> 11) * 0x1.0p-53;
  }

  /// Standard normal from two independent uniforms (Box-Muller).
  double normal(std::uint64_t site, std::uint64_t slot) const {
    double u1 = uniform(site, 2 * slot);
    double u2 = uniform(site, 2 * slot + 1);
    if (u1 <= 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

 private:
  std::uint64_t seed_;
};

}  // namespace qmg
