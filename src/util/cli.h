#pragma once
// Tiny --key=value command-line parser used by the examples and benches so
// every harness accepts the same style of overrides (lattice size, mass,
// node counts, ...).

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace qmg {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        positional_.push_back(arg);
        continue;
      }
      arg = arg.substr(2);
      auto eq = arg.find('=');
      if (eq == std::string::npos) {
        kv_[arg] = "1";  // bare flag => boolean true
      } else {
        kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
      }
    }
  }

  bool has(const std::string& key) const { return kv_.count(key) > 0; }

  std::string get(const std::string& key, const std::string& def) const {
    auto it = kv_.find(key);
    return it == kv_.end() ? def : it->second;
  }

  long get_int(const std::string& key, long def) const {
    auto it = kv_.find(key);
    return it == kv_.end() ? def : std::strtol(it->second.c_str(), nullptr, 10);
  }

  double get_double(const std::string& key, double def) const {
    auto it = kv_.find(key);
    return it == kv_.end() ? def : std::strtod(it->second.c_str(), nullptr);
  }

  bool get_bool(const std::string& key, bool def) const {
    auto it = kv_.find(key);
    if (it == kv_.end()) return def;
    return it->second != "0" && it->second != "false";
  }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> kv_;
  std::vector<std::string> positional_;
};

}  // namespace qmg
