#pragma once
// Fixed-size dense complex matrices and vectors (compile-time dimensions).
// These model the per-site objects of lattice QCD: SU(3) link matrices,
// 4x4 spin matrices, 12-component color-spinors.

#include <array>
#include <cmath>

#include "linalg/complex.h"

namespace qmg {

template <typename T, int R, int C>
struct Matrix {
  std::array<Complex<T>, R * C> e{};

  static constexpr int rows = R;
  static constexpr int cols = C;

  constexpr Complex<T>& operator()(int r, int c) { return e[r * C + c]; }
  constexpr const Complex<T>& operator()(int r, int c) const {
    return e[r * C + c];
  }

  constexpr Matrix& operator+=(const Matrix& o) {
    for (int i = 0; i < R * C; ++i) e[i] += o.e[i];
    return *this;
  }
  constexpr Matrix& operator-=(const Matrix& o) {
    for (int i = 0; i < R * C; ++i) e[i] -= o.e[i];
    return *this;
  }
  constexpr Matrix& operator*=(const Complex<T>& s) {
    for (auto& x : e) x *= s;
    return *this;
  }
  constexpr Matrix& operator*=(T s) {
    for (auto& x : e) x *= s;
    return *this;
  }

  static constexpr Matrix zero() { return Matrix{}; }

  static constexpr Matrix identity() {
    static_assert(R == C, "identity requires square matrix");
    Matrix m{};
    for (int i = 0; i < R; ++i) m(i, i) = Complex<T>(1);
    return m;
  }
};

template <typename T, int N>
using Vector = Matrix<T, N, 1>;

template <typename T, int R, int C>
constexpr Matrix<T, R, C> operator+(Matrix<T, R, C> a,
                                    const Matrix<T, R, C>& b) {
  return a += b;
}
template <typename T, int R, int C>
constexpr Matrix<T, R, C> operator-(Matrix<T, R, C> a,
                                    const Matrix<T, R, C>& b) {
  return a -= b;
}
template <typename T, int R, int C>
constexpr Matrix<T, R, C> operator*(Matrix<T, R, C> a, const Complex<T>& s) {
  return a *= s;
}
template <typename T, int R, int C>
constexpr Matrix<T, R, C> operator*(const Complex<T>& s, Matrix<T, R, C> a) {
  return a *= s;
}
template <typename T, int R, int C>
constexpr Matrix<T, R, C> operator*(Matrix<T, R, C> a, T s) {
  return a *= s;
}
template <typename T, int R, int C>
constexpr Matrix<T, R, C> operator*(T s, Matrix<T, R, C> a) {
  return a *= s;
}

template <typename T, int R, int K, int C>
constexpr Matrix<T, R, C> operator*(const Matrix<T, R, K>& a,
                                    const Matrix<T, K, C>& b) {
  Matrix<T, R, C> out{};
  for (int r = 0; r < R; ++r)
    for (int k = 0; k < K; ++k) {
      const Complex<T> ark = a(r, k);
      for (int c = 0; c < C; ++c) out(r, c) += ark * b(k, c);
    }
  return out;
}

/// Hermitian conjugate.
template <typename T, int R, int C>
constexpr Matrix<T, C, R> adjoint(const Matrix<T, R, C>& a) {
  Matrix<T, C, R> out{};
  for (int r = 0; r < R; ++r)
    for (int c = 0; c < C; ++c) out(c, r) = conj(a(r, c));
  return out;
}

template <typename T, int R, int C>
constexpr Matrix<T, C, R> transpose(const Matrix<T, R, C>& a) {
  Matrix<T, C, R> out{};
  for (int r = 0; r < R; ++r)
    for (int c = 0; c < C; ++c) out(c, r) = a(r, c);
  return out;
}

template <typename T, int R, int C>
constexpr Matrix<T, R, C> conj(const Matrix<T, R, C>& a) {
  Matrix<T, R, C> out{};
  for (int i = 0; i < R * C; ++i) out.e[i] = conj(a.e[i]);
  return out;
}

template <typename T, int N>
constexpr Complex<T> trace(const Matrix<T, N, N>& a) {
  Complex<T> t{};
  for (int i = 0; i < N; ++i) t += a(i, i);
  return t;
}

/// Frobenius norm squared.
template <typename T, int R, int C>
constexpr T norm2(const Matrix<T, R, C>& a) {
  T n{};
  for (const auto& x : a.e) n += norm2(x);
  return n;
}

/// <a, b> = sum conj(a_i) b_i.
template <typename T, int R, int C>
constexpr Complex<T> dot(const Matrix<T, R, C>& a, const Matrix<T, R, C>& b) {
  Complex<T> d{};
  for (int i = 0; i < R * C; ++i) d += conj_mul(a.e[i], b.e[i]);
  return d;
}

template <typename T, int N>
constexpr Complex<T> det3(const Matrix<T, N, N>& a) {
  static_assert(N == 3, "det3 is for 3x3 matrices");
  return a(0, 0) * (a(1, 1) * a(2, 2) - a(1, 2) * a(2, 1)) -
         a(0, 1) * (a(1, 0) * a(2, 2) - a(1, 2) * a(2, 0)) +
         a(0, 2) * (a(1, 0) * a(2, 1) - a(1, 1) * a(2, 0));
}

template <typename T, int R, int C>
inline T max_abs_deviation(const Matrix<T, R, C>& a,
                           const Matrix<T, R, C>& b) {
  T m{};
  for (int i = 0; i < R * C; ++i) {
    const T d = std::sqrt(norm2(a.e[i] - b.e[i]));
    if (d > m) m = d;
  }
  return m;
}

}  // namespace qmg
