#pragma once
// Runtime-sized small dense complex matrices.
//
// These model objects whose dimension is an algorithm parameter rather than
// a compile-time constant: the coarse-grid link matrices Y of size
// (2*Nhat_c)^2 (Eq. 3 of the paper; Nhat_c is the number of null vectors,
// typically 24 or 32) and the chiral 6x6 clover blocks.  Storage is a flat
// row-major array; an LU factorization with partial pivoting provides the
// inverses needed by red-black (Schur-complement) preconditioning.

#include <cassert>
#include <cmath>
#include <cstdlib>
#include <vector>

#include "linalg/complex.h"

namespace qmg {

template <typename T>
class SmallMatrix {
 public:
  SmallMatrix() = default;
  SmallMatrix(int rows, int cols)
      : rows_(rows), cols_(cols), e_(static_cast<size_t>(rows) * cols) {}

  static SmallMatrix identity(int n) {
    SmallMatrix m(n, n);
    for (int i = 0; i < n; ++i) m(i, i) = Complex<T>(1);
    return m;
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  Complex<T>& operator()(int r, int c) {
    return e_[static_cast<size_t>(r) * cols_ + c];
  }
  const Complex<T>& operator()(int r, int c) const {
    return e_[static_cast<size_t>(r) * cols_ + c];
  }

  Complex<T>* data() { return e_.data(); }
  const Complex<T>* data() const { return e_.data(); }

  SmallMatrix& operator+=(const SmallMatrix& o) {
    assert(rows_ == o.rows_ && cols_ == o.cols_);
    for (size_t i = 0; i < e_.size(); ++i) e_[i] += o.e_[i];
    return *this;
  }
  SmallMatrix& operator-=(const SmallMatrix& o) {
    assert(rows_ == o.rows_ && cols_ == o.cols_);
    for (size_t i = 0; i < e_.size(); ++i) e_[i] -= o.e_[i];
    return *this;
  }
  SmallMatrix& operator*=(const Complex<T>& s) {
    for (auto& x : e_) x *= s;
    return *this;
  }

  friend SmallMatrix operator+(SmallMatrix a, const SmallMatrix& b) {
    return a += b;
  }
  friend SmallMatrix operator-(SmallMatrix a, const SmallMatrix& b) {
    return a -= b;
  }

  friend SmallMatrix operator*(const SmallMatrix& a, const SmallMatrix& b) {
    assert(a.cols_ == b.rows_);
    SmallMatrix out(a.rows_, b.cols_);
    for (int r = 0; r < a.rows_; ++r)
      for (int k = 0; k < a.cols_; ++k) {
        const Complex<T> ark = a(r, k);
        for (int c = 0; c < b.cols_; ++c) out(r, c) += ark * b(k, c);
      }
    return out;
  }

  SmallMatrix adjoint() const {
    SmallMatrix out(cols_, rows_);
    for (int r = 0; r < rows_; ++r)
      for (int c = 0; c < cols_; ++c) out(c, r) = conj((*this)(r, c));
    return out;
  }

  /// y = A x (x, y are raw complex arrays of the right length).
  void multiply(const Complex<T>* x, Complex<T>* y) const {
    for (int r = 0; r < rows_; ++r) {
      Complex<T> acc{};
      const Complex<T>* row = &e_[static_cast<size_t>(r) * cols_];
      for (int c = 0; c < cols_; ++c) acc += row[c] * x[c];
      y[r] = acc;
    }
  }

  /// y += A x.
  void multiply_add(const Complex<T>* x, Complex<T>* y) const {
    for (int r = 0; r < rows_; ++r) {
      Complex<T> acc{};
      const Complex<T>* row = &e_[static_cast<size_t>(r) * cols_];
      for (int c = 0; c < cols_; ++c) acc += row[c] * x[c];
      y[r] += acc;
    }
  }

  T frobenius_norm2() const {
    T n{};
    for (const auto& x : e_) n += norm2(x);
    return n;
  }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<Complex<T>> e_;
};

/// LU factorization with partial pivoting for runtime-sized square matrices.
/// Used to invert the even/odd clover blocks and the coarse diagonal term X
/// for Schur-complement preconditioning on every level.
template <typename T>
class LuFactor {
 public:
  explicit LuFactor(const SmallMatrix<T>& a)
      : n_(a.rows()), lu_(a), piv_(static_cast<size_t>(a.rows())) {
    assert(a.rows() == a.cols());
    factor();
  }

  bool singular() const { return singular_; }

  /// Solve A x = b in place (b becomes x).
  void solve(Complex<T>* b) const {
    // Apply pivots.
    for (int i = 0; i < n_; ++i) {
      if (piv_[i] != i) std::swap(b[i], b[piv_[i]]);
    }
    // Forward substitution (unit lower).
    for (int i = 1; i < n_; ++i) {
      Complex<T> acc = b[i];
      for (int j = 0; j < i; ++j) acc -= lu_(i, j) * b[j];
      b[i] = acc;
    }
    // Backward substitution.
    for (int i = n_ - 1; i >= 0; --i) {
      Complex<T> acc = b[i];
      for (int j = i + 1; j < n_; ++j) acc -= lu_(i, j) * b[j];
      b[i] = acc / lu_(i, i);
    }
  }

  SmallMatrix<T> inverse() const {
    SmallMatrix<T> inv = SmallMatrix<T>::identity(n_);
    std::vector<Complex<T>> col(static_cast<size_t>(n_));
    SmallMatrix<T> out(n_, n_);
    for (int c = 0; c < n_; ++c) {
      for (int r = 0; r < n_; ++r) col[r] = inv(r, c);
      solve(col.data());
      for (int r = 0; r < n_; ++r) out(r, c) = col[r];
    }
    return out;
  }

 private:
  void factor() {
    for (int k = 0; k < n_; ++k) {
      // Partial pivot on column k.
      int p = k;
      T best = norm2(lu_(k, k));
      for (int i = k + 1; i < n_; ++i) {
        const T v = norm2(lu_(i, k));
        if (v > best) {
          best = v;
          p = i;
        }
      }
      piv_[k] = p;
      if (p != k) {
        for (int c = 0; c < n_; ++c) std::swap(lu_(k, c), lu_(p, c));
      }
      if (best == T(0)) {
        singular_ = true;
        continue;
      }
      const Complex<T> pivot = lu_(k, k);
      for (int i = k + 1; i < n_; ++i) {
        const Complex<T> m = lu_(i, k) / pivot;
        lu_(i, k) = m;
        for (int c = k + 1; c < n_; ++c) lu_(i, c) -= m * lu_(k, c);
      }
    }
  }

  int n_;
  SmallMatrix<T> lu_;
  std::vector<int> piv_;
  bool singular_ = false;
};

}  // namespace qmg
