#pragma once
// SU(3) helpers: Haar-random generation, reunitarization, and the gauge-field
// compression schemes of QUDA (store 12 or 8 reals instead of 18 and
// reconstruct the rest on the fly, trading flops for memory bandwidth; see
// paper section 4, strategy (a)).

#include <cmath>

#include "linalg/matrix.h"
#include "util/rng.h"

namespace qmg {

template <typename T>
using Su3 = Matrix<T, 3, 3>;

/// Project onto SU(3) by Gram-Schmidt on the first two rows and rebuilding
/// the third as the conjugate cross product (exact for near-unitary input).
template <typename T>
inline void reunitarize(Su3<T>& u) {
  // Normalize row 0.
  T n0 = 0;
  for (int c = 0; c < 3; ++c) n0 += norm2(u(0, c));
  n0 = T(1) / std::sqrt(n0);
  for (int c = 0; c < 3; ++c) u(0, c) *= n0;
  // Orthogonalize row 1 against row 0, then normalize.
  Complex<T> proj{};
  for (int c = 0; c < 3; ++c) proj += conj_mul(u(0, c), u(1, c));
  for (int c = 0; c < 3; ++c) u(1, c) -= proj * u(0, c);
  T n1 = 0;
  for (int c = 0; c < 3; ++c) n1 += norm2(u(1, c));
  n1 = T(1) / std::sqrt(n1);
  for (int c = 0; c < 3; ++c) u(1, c) *= n1;
  // Row 2 = conj(row0 x row1): guarantees det = +1.
  u(2, 0) = conj(u(0, 1) * u(1, 2) - u(0, 2) * u(1, 1));
  u(2, 1) = conj(u(0, 2) * u(1, 0) - u(0, 0) * u(1, 2));
  u(2, 2) = conj(u(0, 0) * u(1, 1) - u(0, 1) * u(1, 0));
}

/// Haar-ish random SU(3): complex Gaussian entries followed by
/// reunitarization.  Adequate for synthetic disordered gauge fields.
template <typename T>
inline Su3<T> random_su3(const SiteRng& rng, std::uint64_t site,
                         std::uint64_t slot_base) {
  Su3<T> u;
  for (int i = 0; i < 9; ++i) {
    u.e[i] = Complex<T>(static_cast<T>(rng.normal(site, slot_base + 2 * i)),
                        static_cast<T>(rng.normal(site, slot_base + 2 * i + 1)));
  }
  reunitarize(u);
  return u;
}

/// Small random SU(3) rotation: exp(i eps H) ~ 1 + i eps H, reunitarized.
/// eps controls the disorder strength of synthetic ensembles.
template <typename T>
inline Su3<T> random_su3_near_identity(const SiteRng& rng, std::uint64_t site,
                                       std::uint64_t slot_base, T eps) {
  Su3<T> u = Su3<T>::identity();
  // Hermitian perturbation H with Gaussian entries.
  for (int r = 0; r < 3; ++r) {
    u(r, r) += Complex<T>(
        T(0), eps * static_cast<T>(rng.normal(site, slot_base + 20 + r)));
  }
  int slot = 0;
  for (int r = 0; r < 3; ++r)
    for (int c = r + 1; c < 3; ++c, ++slot) {
      const Complex<T> h(
          static_cast<T>(rng.normal(site, slot_base + 2 * slot)),
          static_cast<T>(rng.normal(site, slot_base + 2 * slot + 1)));
      u(r, c) += Complex<T>(T(0), eps) * h;
      u(c, r) += Complex<T>(T(0), eps) * conj(h);
    }
  reunitarize(u);
  return u;
}

/// Deviation from unitarity: || U U^dag - 1 ||_F.
template <typename T>
inline T unitarity_violation(const Su3<T>& u) {
  const Su3<T> d = u * adjoint(u) - Su3<T>::identity();
  return std::sqrt(norm2(d));
}

// --- Compression -----------------------------------------------------------

/// 12-real compression: store the first two rows; the third row of any SU(3)
/// matrix is conj(row0 x row1).
template <typename T>
struct Su3Compressed12 {
  Complex<T> row[6];  // rows 0 and 1
};

template <typename T>
inline Su3Compressed12<T> compress12(const Su3<T>& u) {
  Su3Compressed12<T> c;
  for (int i = 0; i < 6; ++i) c.row[i] = u.e[i];
  return c;
}

template <typename T>
inline Su3<T> reconstruct12(const Su3Compressed12<T>& c) {
  Su3<T> u;
  for (int i = 0; i < 6; ++i) u.e[i] = c.row[i];
  u(2, 0) = conj(u(0, 1) * u(1, 2) - u(0, 2) * u(1, 1));
  u(2, 1) = conj(u(0, 2) * u(1, 0) - u(0, 0) * u(1, 2));
  u(2, 2) = conj(u(0, 0) * u(1, 1) - u(0, 1) * u(1, 0));
  return u;
}

/// 8-real compression (QUDA reconstruct-8): store u01, u02, u10 as complex
/// plus the phases of u00 and u20.  Magnitudes follow from row/column
/// normalization; the remaining 2x2 block follows from orthogonality and the
/// cross-product identity.
template <typename T>
struct Su3Compressed8 {
  Complex<T> u01, u02, u10;
  T theta00, theta20;
};

template <typename T>
inline Su3Compressed8<T> compress8(const Su3<T>& u) {
  return {u(0, 1), u(0, 2), u(1, 0), arg(u(0, 0)), arg(u(2, 0))};
}

template <typename T>
inline Su3<T> reconstruct8(const Su3Compressed8<T>& c) {
  Su3<T> u{};
  const T row0_rest = norm2(c.u01) + norm2(c.u02);
  const T abs00 = std::sqrt(std::max(T(0), T(1) - row0_rest));
  u(0, 0) = abs00 * polar1(c.theta00);
  u(0, 1) = c.u01;
  u(0, 2) = c.u02;
  u(1, 0) = c.u10;
  // Column 0 normalization fixes |u20|.
  const T abs20sq =
      std::max(T(0), T(1) - norm2(u(0, 0)) - norm2(c.u10));
  u(2, 0) = std::sqrt(abs20sq) * polar1(c.theta20);
  // Solve for u11, u12 from
  //   row1 . conj(row0) = 0        : conj(u00) u10 + conj(u01) u11 + conj(u02) u12 = 0
  //   conj(u20) = u01 u12 - u02 u11  (third row is conj cross product)
  // Linear 2x2 system in (u11, u12) with determinant |u01|^2 + |u02|^2.
  const Complex<T> rhs1 = -conj(u(0, 0)) * c.u10;
  const Complex<T> rhs2 = conj(u(2, 0));
  const T det = row0_rest;  // |u01|^2 + |u02|^2
  // [ conj(u01)  conj(u02) ] [u11]   [rhs1]
  // [   -u02        u01    ] [u12] = [rhs2]
  u(1, 1) = (u(0, 1) * rhs1 - conj(u(0, 2)) * rhs2) / det;
  u(1, 2) = (u(0, 2) * rhs1 + conj(u(0, 1)) * rhs2) / det;
  // Third row from the cross-product identity.
  u(2, 1) = conj(u(0, 2) * u(1, 0) - u(0, 0) * u(1, 2));
  u(2, 2) = conj(u(0, 0) * u(1, 1) - u(0, 1) * u(1, 0));
  return u;
}

}  // namespace qmg
