#pragma once
// Aligned storage for field data.  The SIMD lane kernels (linalg/simd.h)
// deinterleave packs straight out of field storage; a 64-byte base keeps
// every pack load inside naturally-aligned cache lines for any supported
// width (8 double lanes per SoA side = 64 bytes) and matches the common
// x86 cache-line/AVX-512 alignment.  std::vector's default allocator only
// guarantees alignof(std::max_align_t) (typically 16), so the fields use
// this allocator instead.

#include <cstddef>
#include <new>
#include <vector>

namespace qmg {

/// Alignment of BlockSpinor / ColorSpinorField storage, in bytes.
inline constexpr std::size_t kFieldAlignment = 64;

template <typename T, std::size_t Align = kFieldAlignment>
struct AlignedAllocator {
  using value_type = T;
  static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                "alignment must be a power of two covering alignof(T)");

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Align)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Align));
  }
};

template <typename T, typename U, std::size_t A>
inline bool operator==(const AlignedAllocator<T, A>&,
                       const AlignedAllocator<U, A>&) {
  return true;
}
template <typename T, typename U, std::size_t A>
inline bool operator!=(const AlignedAllocator<T, A>&,
                       const AlignedAllocator<U, A>&) {
  return false;
}

/// std::vector with kFieldAlignment-aligned data().
template <typename T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

/// True when p sits on a kFieldAlignment boundary (debug assertions).
inline bool is_field_aligned(const void* p) {
  return reinterpret_cast<std::size_t>(p) % kFieldAlignment == 0;
}

}  // namespace qmg
