#pragma once
// Width-templated SIMD lane packs (the Backend::Simd execution substrate).
//
// A simd_pack<T, W> is W lanes of T; a cpack<T, W> is W complex lanes in
// SoA form (separate re/im lane arrays), which is the register layout the
// rhs-contiguous BlockSpinor storage (fields/blockspinor.h) deinterleaves
// into with unit-stride loads.  All arithmetic is written as fixed-trip
// per-lane loops over plain arrays — no intrinsics — so any -march level
// compiles every width (a wider-than-native pack just becomes several
// hardware vectors) and the compiler's vectorizer does the lowering.
//
// Bit-identity contract: every cpack operation evaluates, lane by lane,
// the EXACT expression tree of the corresponding Complex<T> operation in
// linalg/complex.h (e.g. cmul computes re = a.re*b.re - a.im*b.im, im =
// a.re*b.im + a.im*b.re — the operator*= product).  A kernel that replaces
// a scalar rhs loop with lane packs therefore changes nothing about any
// single rhs's arithmetic: lanes are independent systems, and per-rhs
// results are bit-identical to the scalar kernel by construction.  This is
// what the Simd==Serial bitwise tests in tests/test_simd.cpp pin down.

#include <cstddef>

#include "linalg/complex.h"

// Compile-time ceiling on the lane width the tuner offers (and the width
// Backend::Simd's "auto" resolves to).  Every width up to kSimdWidthLimit
// always COMPILES — the cap only decides which widths are worth running
// natively.  Override with -DQMG_MAX_SIMD_WIDTH=N (the CMake option);
// otherwise detect from the target ISA: 8 double lanes per SoA side needs
// AVX-512, 4 wants AVX, 2 fits SSE2.
#ifndef QMG_MAX_SIMD_WIDTH
#if defined(__AVX512F__)
#define QMG_MAX_SIMD_WIDTH 8
#elif defined(__AVX__)
#define QMG_MAX_SIMD_WIDTH 4
#elif defined(__SSE2__) || defined(__x86_64__) || defined(_M_X64) || \
    defined(__aarch64__)
#define QMG_MAX_SIMD_WIDTH 2
#else
#define QMG_MAX_SIMD_WIDTH 1
#endif
#endif

namespace qmg {
namespace simd {

/// Hard template ceiling: packs are instantiated at 1/2/4/8 only.
inline constexpr int kSimdWidthLimit = 8;

/// The build's native lane cap (see QMG_MAX_SIMD_WIDTH above).
inline constexpr int kMaxSimdWidth =
    QMG_MAX_SIMD_WIDTH < 1
        ? 1
        : (QMG_MAX_SIMD_WIDTH > kSimdWidthLimit ? kSimdWidthLimit
                                                : QMG_MAX_SIMD_WIDTH);

/// Round a requested width down to a supported pack width {1, 2, 4, 8}.
inline constexpr int normalize_simd_width(int w) {
  if (w >= 8) return 8;
  if (w >= 4) return 4;
  if (w >= 2) return 2;
  return 1;
}

/// Largest supported width that fits n lanes of work: what a kernel with
/// nrhs < the policy's width degrades to (the rest is scalar epilogue).
inline constexpr int width_for(int w, long n) {
  int v = normalize_simd_width(w);
  while (v > 1 && v > n) v /= 2;
  return v;
}

/// W lanes of T.  Plain aggregate: value-initialization zeroes all lanes.
template <typename T, int W>
struct alignas(sizeof(T) * W) simd_pack {
  static_assert(W >= 1 && W <= kSimdWidthLimit && (W & (W - 1)) == 0,
                "pack width must be a power of two in [1, 8]");
  T v[W];

  static simd_pack load(const T* p) {
    simd_pack r;
    for (int j = 0; j < W; ++j) r.v[j] = p[j];
    return r;
  }
  void store(T* p) const {
    for (int j = 0; j < W; ++j) p[j] = v[j];
  }
  static simd_pack broadcast(T s) {
    simd_pack r;
    for (int j = 0; j < W; ++j) r.v[j] = s;
    return r;
  }
};

/// W complex lanes, SoA (re lanes then im lanes).  Aggregate; cpack<T,W>{}
/// is W complex zeros.  Lane j mirrors one Complex<T> value.
template <typename T, int W>
struct cpack {
  simd_pack<T, W> re;
  simd_pack<T, W> im;

  /// Deinterleave W consecutive Complex<T> values (the unit-stride rhs
  /// axis of a BlockSpinor row, or W consecutive sites of a single field).
  static cpack load(const Complex<T>* p) {
    cpack r;
    for (int j = 0; j < W; ++j) {
      r.re.v[j] = p[j].re;
      r.im.v[j] = p[j].im;
    }
    return r;
  }

  /// Deinterleave + promote: lane j is Complex<T>(p[j]) — the per-element
  /// promotion the mixed-precision kernels apply before multiplying.
  template <typename TX>
  static cpack load_from(const Complex<TX>* p) {
    cpack r;
    for (int j = 0; j < W; ++j) {
      r.re.v[j] = static_cast<T>(p[j].re);
      r.im.v[j] = static_cast<T>(p[j].im);
    }
    return r;
  }

  void store(Complex<T>* p) const {
    for (int j = 0; j < W; ++j) {
      p[j].re = re.v[j];
      p[j].im = im.v[j];
    }
  }

  static cpack broadcast(Complex<T> a) {
    cpack r;
    for (int j = 0; j < W; ++j) {
      r.re.v[j] = a.re;
      r.im.v[j] = a.im;
    }
    return r;
  }

  Complex<T> lane(int j) const { return {re.v[j], im.v[j]}; }

  cpack& operator+=(const cpack& o) {
    for (int j = 0; j < W; ++j) {
      re.v[j] += o.re.v[j];
      im.v[j] += o.im.v[j];
    }
    return *this;
  }
  cpack& operator-=(const cpack& o) {
    for (int j = 0; j < W; ++j) {
      re.v[j] -= o.re.v[j];
      im.v[j] -= o.im.v[j];
    }
    return *this;
  }
};

template <typename T, int W>
inline cpack<T, W> operator+(cpack<T, W> a, const cpack<T, W>& b) {
  return a += b;
}
template <typename T, int W>
inline cpack<T, W> operator-(cpack<T, W> a, const cpack<T, W>& b) {
  return a -= b;
}

/// Broadcast-complex times pack: lane j = a * x_j with Complex::operator*='s
/// expression (re = a.re*x.re - a.im*x.im, im = a.re*x.im + a.im*x.re).
template <typename T, int W>
inline cpack<T, W> operator*(const Complex<T>& a, const cpack<T, W>& x) {
  cpack<T, W> r;
  for (int j = 0; j < W; ++j) {
    r.re.v[j] = a.re * x.re.v[j] - a.im * x.im.v[j];
    r.im.v[j] = a.re * x.im.v[j] + a.im * x.re.v[j];
  }
  return r;
}

/// Lane-wise complex product (per-lane coefficients, e.g. block_caxpy's
/// a[k]): lane j = a_j * x_j, same expression tree as operator*=.
template <typename T, int W>
inline cpack<T, W> cmul(const cpack<T, W>& a, const cpack<T, W>& x) {
  cpack<T, W> r;
  for (int j = 0; j < W; ++j) {
    r.re.v[j] = a.re.v[j] * x.re.v[j] - a.im.v[j] * x.im.v[j];
    r.im.v[j] = a.re.v[j] * x.im.v[j] + a.im.v[j] * x.re.v[j];
  }
  return r;
}

/// Broadcast-real times pack: lane j = {x.re*s, x.im*s} — exactly
/// Complex::operator*=(T) (note the operand order).
template <typename T, int W>
inline cpack<T, W> operator*(T s, const cpack<T, W>& x) {
  cpack<T, W> r;
  for (int j = 0; j < W; ++j) {
    r.re.v[j] = x.re.v[j] * s;
    r.im.v[j] = x.im.v[j] * s;
  }
  return r;
}

/// Lane-wise real scale (per-lane real coefficients, e.g. block_axpy's
/// a[k]): lane j = {x.re*s_j, x.im*s_j}.
template <typename T, int W>
inline cpack<T, W> rmul(const simd_pack<T, W>& s, const cpack<T, W>& x) {
  cpack<T, W> r;
  for (int j = 0; j < W; ++j) {
    r.re.v[j] = x.re.v[j] * s.v[j];
    r.im.v[j] = x.im.v[j] * s.v[j];
  }
  return r;
}

/// conj(a)*b with a broadcast: linalg/complex.h's conj_mul per lane.
template <typename T, int W>
inline cpack<T, W> conj_mul(const Complex<T>& a, const cpack<T, W>& b) {
  cpack<T, W> r;
  for (int j = 0; j < W; ++j) {
    r.re.v[j] = a.re * b.re.v[j] + a.im * b.im.v[j];
    r.im.v[j] = a.re * b.im.v[j] - a.im * b.re.v[j];
  }
  return r;
}

/// conj(a)*b lane-wise (per-lane a, e.g. block_cdot's x side).
template <typename T, int W>
inline cpack<T, W> conj_mul(const cpack<T, W>& a, const cpack<T, W>& b) {
  cpack<T, W> r;
  for (int j = 0; j < W; ++j) {
    r.re.v[j] = a.re.v[j] * b.re.v[j] + a.im.v[j] * b.im.v[j];
    r.im.v[j] = a.re.v[j] * b.im.v[j] - a.im.v[j] * b.re.v[j];
  }
  return r;
}

/// |x|^2 per lane (re*re + im*im in T, like qmg::norm2).
template <typename T, int W>
inline simd_pack<T, W> norm2(const cpack<T, W>& x) {
  simd_pack<T, W> r;
  for (int j = 0; j < W; ++j)
    r.v[j] = x.re.v[j] * x.re.v[j] + x.im.v[j] * x.im.v[j];
  return r;
}

/// Dispatch a runtime width to the matching compile-time pack width.  The
/// functor receives std::integral_constant-style tag (any type with a
/// constexpr value): f(width_tag<W>{}).
template <int W>
struct width_tag {
  static constexpr int value = W;
};

template <typename F>
inline void dispatch_width(int w, F&& f) {
  switch (normalize_simd_width(w)) {
    case 8:
      f(width_tag<8>{});
      return;
    case 4:
      f(width_tag<4>{});
      return;
    case 2:
      f(width_tag<2>{});
      return;
    default:
      f(width_tag<1>{});
      return;
  }
}

}  // namespace simd
}  // namespace qmg
