#pragma once
// Lightweight complex type.
//
// std::complex multiplication lowers to a library call (__mulsc3) to handle
// NaN corner cases unless -ffast-math is enabled; for stencil kernels that is
// a large overhead.  This type performs the naive (a*c - b*d, a*d + b*c)
// product, which is what every lattice QCD code uses.  It is layout
// compatible with std::complex (two contiguous reals).

#include <cmath>
#include <iosfwd>
#include <ostream>

namespace qmg {

template <typename T>
struct Complex {
  T re{};
  T im{};

  constexpr Complex() = default;
  constexpr Complex(T r) : re(r), im(0) {}
  constexpr Complex(T r, T i) : re(r), im(i) {}

  template <typename U>
  explicit constexpr Complex(const Complex<U>& o)
      : re(static_cast<T>(o.re)), im(static_cast<T>(o.im)) {}

  constexpr T real() const { return re; }
  constexpr T imag() const { return im; }

  constexpr Complex& operator+=(const Complex& o) {
    re += o.re;
    im += o.im;
    return *this;
  }
  constexpr Complex& operator-=(const Complex& o) {
    re -= o.re;
    im -= o.im;
    return *this;
  }
  constexpr Complex& operator*=(const Complex& o) {
    const T r = re * o.re - im * o.im;
    im = re * o.im + im * o.re;
    re = r;
    return *this;
  }
  constexpr Complex& operator*=(T s) {
    re *= s;
    im *= s;
    return *this;
  }
  constexpr Complex& operator/=(T s) {
    re /= s;
    im /= s;
    return *this;
  }

  constexpr Complex operator-() const { return {-re, -im}; }
};

template <typename T>
constexpr Complex<T> operator+(Complex<T> a, const Complex<T>& b) {
  return a += b;
}
template <typename T>
constexpr Complex<T> operator-(Complex<T> a, const Complex<T>& b) {
  return a -= b;
}
template <typename T>
constexpr Complex<T> operator*(Complex<T> a, const Complex<T>& b) {
  return a *= b;
}
template <typename T>
constexpr Complex<T> operator*(Complex<T> a, T s) {
  return a *= s;
}
template <typename T>
constexpr Complex<T> operator*(T s, Complex<T> a) {
  return a *= s;
}
template <typename T>
constexpr Complex<T> operator/(Complex<T> a, T s) {
  return a /= s;
}

template <typename T>
constexpr Complex<T> operator/(const Complex<T>& a, const Complex<T>& b) {
  const T d = b.re * b.re + b.im * b.im;
  return {(a.re * b.re + a.im * b.im) / d, (a.im * b.re - a.re * b.im) / d};
}

template <typename T>
constexpr bool operator==(const Complex<T>& a, const Complex<T>& b) {
  return a.re == b.re && a.im == b.im;
}

template <typename T>
constexpr Complex<T> conj(const Complex<T>& a) {
  return {a.re, -a.im};
}

/// |a|^2.
template <typename T>
constexpr T norm2(const Complex<T>& a) {
  return a.re * a.re + a.im * a.im;
}

template <typename T>
inline T abs(const Complex<T>& a) {
  return std::sqrt(norm2(a));
}

template <typename T>
inline T arg(const Complex<T>& a) {
  return std::atan2(a.im, a.re);
}

/// Fused conj(a)*b — the ubiquitous inner-product kernel.
template <typename T>
constexpr Complex<T> conj_mul(const Complex<T>& a, const Complex<T>& b) {
  return {a.re * b.re + a.im * b.im, a.re * b.im - a.im * b.re};
}

/// e^{i theta}.
template <typename T>
inline Complex<T> polar1(T theta) {
  return {std::cos(theta), std::sin(theta)};
}

template <typename T>
std::ostream& operator<<(std::ostream& os, const Complex<T>& a) {
  return os << "(" << a.re << (a.im < 0 ? "" : "+") << a.im << "i)";
}

using complexd = Complex<double>;
using complexf = Complex<float>;

}  // namespace qmg
