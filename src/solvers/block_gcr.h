#pragma once
// Block (multi-right-hand-side) flexible GCR with per-rhs convergence
// masking — the solver front-end of the MRHS reformulation (paper section
// 9): all N systems advance in lockstep so every operator application is
// one batched apply_block (N x the arithmetic intensity of the stencil
// load), and every reduction is one batched per-rhs block_cdot/block_norm2.
//
// This is an MRHS-wrapped GCR, not a shared-subspace block-Krylov method:
// each rhs keeps its own Krylov directions (slices of shared BlockSpinors)
// and its own Gram-Schmidt coefficients, computed in exactly the order of
// the single-rhs GcrSolver (solvers/gcr.h).  A converged rhs is masked out
// of all further x/r/z/w updates while the batch continues, so for every
// rhs the iterates — and the returned solution — are bit-identical to an
// independent single-rhs GCR solve with the same operator kernels.
//
// Two documented deviations from running N independent solves, both
// confined to pathological cases: (1) a rhs whose recurrence residual
// converges is masked immediately; if its *true* residual still exceeds
// the target (heavy rounding drift), the independent solver would restart
// while the block solver reports converged = false for that rhs.  (2) a
// rhs whose search direction collapses (|w| = 0) is masked as permanently
// stalled, where the independent solver would restart.

#include <cmath>
#include <vector>

#include "fields/blas.h"
#include "solvers/solver.h"
#include "util/timer.h"

namespace qmg {

template <typename T>
class BlockGcrSolver {
 public:
  using BlockField = BlockSpinor<T>;

  /// precond == nullptr means unpreconditioned block GCR.
  BlockGcrSolver(const LinearOperator<T>& op, SolverParams params,
                 BlockPreconditioner<T>* precond = nullptr)
      : op_(op), params_(params), precond_(precond) {}

  BlockSolverResult solve(BlockField& x, const BlockField& b) {
    Timer timer;
    const int nrhs = b.nrhs();
    const int k_max = params_.restart;
    BlockSolverResult res;
    res.rhs.assign(static_cast<size_t>(nrhs), SolverResult{});

    auto r = b.similar();
    op_.apply_block(r, x);
    ++res.block_matvecs;
    const std::vector<T> minus_one(static_cast<size_t>(nrhs), T(-1));
    blas::block_xpay(b, minus_one, r);

    // Sync accounting convention (see BlockSolverResult::block_reductions):
    // every batched reduction call below bumps block_reductions exactly
    // once — it is one fused allreduce in a distributed run regardless of
    // nrhs — while the per-rhs `reductions` entries keep counting only the
    // in-iteration syncs that rhs participates in.
    const std::vector<double> b2 = blas::block_norm2(b);
    ++res.block_reductions;
    std::vector<double> target(static_cast<size_t>(nrhs), 0.0);
    // Mask of rhs still iterating.  b_k = 0 converges immediately with
    // x_k = 0 (matching the single-rhs early return).
    blas::RhsMask active(static_cast<size_t>(nrhs), 1);
    for (int k = 0; k < nrhs; ++k) {
      target[static_cast<size_t>(k)] =
          params_.tol * params_.tol * b2[static_cast<size_t>(k)];
      if (b2[static_cast<size_t>(k)] == 0.0) {
        active[static_cast<size_t>(k)] = 0;
        res.rhs[static_cast<size_t>(k)].converged = true;
        for (long i = 0; i < x.rhs_size(); ++i) x.at(i, k) = Complex<T>{};
      } else {
        res.rhs[static_cast<size_t>(k)].matvecs = 1;
      }
    }

    std::vector<double> r2 = blas::block_norm2(r);
    ++res.block_reductions;
    auto converged = [&](int k) {
      return r2[static_cast<size_t>(k)] <= target[static_cast<size_t>(k)];
    };
    auto iterating = [&](int k) {
      return active[static_cast<size_t>(k)] != 0 &&
             res.rhs[static_cast<size_t>(k)].iterations < params_.max_iter &&
             !converged(k);
    };
    auto any_iterating = [&]() {
      for (int k = 0; k < nrhs; ++k)
        if (iterating(k)) return true;
      return false;
    };

    std::vector<BlockField> z;  // preconditioned directions, one per rhs
    std::vector<BlockField> w;  // M z, orthonormalized per rhs
    while (any_iterating()) {
      z.clear();
      w.clear();
      for (int k_dir = 0; k_dir < k_max && any_iterating(); ++k_dir) {
        // Mask snapshot for this lockstep iteration: exactly the rhs whose
        // independent solver would execute this inner iteration.
        blas::RhsMask step(static_cast<size_t>(nrhs), 0);
        for (int k = 0; k < nrhs; ++k)
          step[static_cast<size_t>(k)] = iterating(k) ? 1 : 0;

        // New direction per rhs: z_k = K(r), w_k = M z_k (both batched).
        z.emplace_back(b.similar());
        if (precond_) {
          (*precond_)(z.back(), r);
        } else {
          blas::block_copy(z.back(), r);
        }
        w.emplace_back(b.similar());
        op_.apply_block(w.back(), z.back());
        ++res.block_matvecs;
        for (int k = 0; k < nrhs; ++k)
          if (step[static_cast<size_t>(k)])
            ++res.rhs[static_cast<size_t>(k)].matvecs;

        // Per-rhs modified Gram-Schmidt against previous w's, mirrored on
        // z — one batched reduction per history entry instead of N.
        for (int j = 0; j < k_dir; ++j) {
          const std::vector<complexd> c = blas::block_cdot(w[j], w.back());
          ++res.block_reductions;
          std::vector<Complex<T>> ct(static_cast<size_t>(nrhs));
          for (int k = 0; k < nrhs; ++k) {
            ct[static_cast<size_t>(k)] =
                Complex<T>(static_cast<T>(-c[static_cast<size_t>(k)].re),
                           static_cast<T>(-c[static_cast<size_t>(k)].im));
            if (step[static_cast<size_t>(k)])
              ++res.rhs[static_cast<size_t>(k)].reductions;
          }
          blas::block_caxpy(ct, w[j], w.back(), &step);
          blas::block_caxpy(ct, z[j], z.back(), &step);
        }
        const std::vector<double> w2 = blas::block_norm2(w.back());
        ++res.block_reductions;
        std::vector<T> inv_norm(static_cast<size_t>(nrhs), T(1));
        for (int k = 0; k < nrhs; ++k) {
          if (!step[static_cast<size_t>(k)]) continue;
          if (w2[static_cast<size_t>(k)] == 0.0) {
            // Direction collapse: permanently stall this rhs (see header).
            active[static_cast<size_t>(k)] = 0;
            step[static_cast<size_t>(k)] = 0;
            continue;
          }
          inv_norm[static_cast<size_t>(k)] =
              static_cast<T>(1.0 / std::sqrt(w2[static_cast<size_t>(k)]));
        }
        blas::block_scale(inv_norm, w.back(), &step);
        blas::block_scale(inv_norm, z.back(), &step);

        // Residual update per rhs (batched projections).
        const std::vector<complexd> a = blas::block_cdot(w.back(), r);
        ++res.block_reductions;
        std::vector<Complex<T>> at(static_cast<size_t>(nrhs));
        std::vector<Complex<T>> mat(static_cast<size_t>(nrhs));
        for (int k = 0; k < nrhs; ++k) {
          at[static_cast<size_t>(k)] =
              Complex<T>(static_cast<T>(a[static_cast<size_t>(k)].re),
                         static_cast<T>(a[static_cast<size_t>(k)].im));
          mat[static_cast<size_t>(k)] =
              Complex<T>{} - at[static_cast<size_t>(k)];
        }
        blas::block_caxpy(at, z.back(), x, &step);
        blas::block_caxpy(mat, w.back(), r, &step);
        const std::vector<double> r2_new = blas::block_norm2(r);
        ++res.block_reductions;
        for (int k = 0; k < nrhs; ++k) {
          if (!step[static_cast<size_t>(k)]) continue;
          r2[static_cast<size_t>(k)] = r2_new[static_cast<size_t>(k)];
          auto& rk = res.rhs[static_cast<size_t>(k)];
          rk.reductions += 3;  // w norm, w.r projection, r norm
          ++rk.iterations;
          if (params_.record_history)
            rk.residual_history.push_back(
                std::sqrt(r2[static_cast<size_t>(k)] / b2[static_cast<size_t>(k)]));
        }
      }
      // Restart: recompute the true residual (batched) to shed accumulated
      // error; rhs still iterating re-evaluate convergence against it,
      // exactly like the single-rhs restart.
      blas::RhsMask restart(static_cast<size_t>(nrhs), 0);
      bool any_restart = false;
      for (int k = 0; k < nrhs; ++k) {
        if (active[static_cast<size_t>(k)] != 0 && !converged(k) &&
            res.rhs[static_cast<size_t>(k)].iterations < params_.max_iter) {
          restart[static_cast<size_t>(k)] = 1;
          any_restart = true;
        }
      }
      if (!any_restart) break;
      op_.apply_block(r, x);
      ++res.block_matvecs;
      blas::block_xpay(b, minus_one, r);
      const std::vector<double> r2_true = blas::block_norm2(r);
      ++res.block_reductions;
      for (int k = 0; k < nrhs; ++k) {
        if (restart[static_cast<size_t>(k)]) {
          r2[static_cast<size_t>(k)] = r2_true[static_cast<size_t>(k)];
          ++res.rhs[static_cast<size_t>(k)].matvecs;
        }
      }
    }

    // Final per-rhs true residuals (one batched apply; x is unchanged for
    // every rhs since the moment it converged or stalled).
    op_.apply_block(r, x);
    ++res.block_matvecs;
    blas::block_xpay(b, minus_one, r);
    const std::vector<double> r2_final = blas::block_norm2(r);
    ++res.block_reductions;
    for (int k = 0; k < nrhs; ++k) {
      auto& rk = res.rhs[static_cast<size_t>(k)];
      if (b2[static_cast<size_t>(k)] == 0.0) continue;  // handled above
      rk.final_rel_residual =
          std::sqrt(r2_final[static_cast<size_t>(k)] / b2[static_cast<size_t>(k)]);
      rk.converged =
          r2_final[static_cast<size_t>(k)] <= target[static_cast<size_t>(k)];
      rk.seconds = timer.seconds();
    }
    res.seconds = timer.seconds();
    return res;
  }

 private:
  const LinearOperator<T>& op_;
  SolverParams params_;
  BlockPreconditioner<T>* precond_;
};

}  // namespace qmg
