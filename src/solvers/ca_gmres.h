#pragma once
// Communication-avoiding (s-step) GMRES — the latency-tolerant coarsest-grid
// solver the paper proposes in section 9 (refs. CA-GMRES [35] and s-step
// Krylov bottom solvers for geometric multigrid [36]).
//
// Fig. 4's diagnosis is that at scale the coarse-grid GCR is dominated by
// its global synchronizations: every GCR iteration performs reductions whose
// log(N) latency exceeds the stencil work on a 2^4-per-node grid.  The
// s-step reformulation computes an s-deep monomial Krylov basis
//
//   V = [r, M r, M^2 r, ..., M^s r]
//
// with NO intermediate reductions, then determines all s combination
// coefficients from one fused Gram-matrix computation — a single global
// reduction per s matvecs instead of ~2 per matvec.  The trade-off is the
// conditioning of the monomial basis, which limits s to ~4-8 in single
// precision; the basis is normalized per power to push that boundary out.
//
// The solver counts its fused reductions (`SolverResult::reductions`) so the
// cluster model can charge allreduce latency per sync and quantify the
// speedup at scale (bench_ablation_ca_gmres).

#include <vector>

#include "fields/blas.h"
#include "linalg/smallmat.h"
#include "solvers/solver.h"
#include "util/timer.h"

namespace qmg {

template <typename T>
class CaGmresSolver {
 public:
  /// `s` is the basis depth: matvecs between global synchronizations.
  CaGmresSolver(const LinearOperator<T>& op, SolverParams params, int s = 4)
      : op_(op), params_(params), s_(s) {}

  SolverResult solve(ColorSpinorField<T>& x, const ColorSpinorField<T>& b) {
    Timer timer;
    SolverResult res;

    auto r = op_.create_vector();
    op_.apply(r, x);
    ++res.matvecs;
    blas::xpay(b, T(-1), r);

    const double b2 = blas::norm2(b);
    if (b2 == 0.0) {
      blas::zero(x);
      res.converged = true;
      res.seconds = timer.seconds();
      return res;
    }
    double r2 = blas::norm2(r);
    // One reduction call = one counted sync, the convention shared with the
    // block solvers' accounting (BlockSolverResult::block_reductions): |b|
    // and |r| are two calls, two syncs.  The s-step Gram below is the
    // converse case — (s^2 + s) dot products in ONE fused sync.
    res.reductions += 2;
    const double target = params_.tol * params_.tol * b2;

    // Krylov basis V[0..s]; W[j] = M V[j] = V[j+1] (monomial basis).
    std::vector<ColorSpinorField<T>> v;
    v.reserve(s_ + 1);
    for (int j = 0; j <= s_; ++j) v.push_back(op_.create_vector());

    while (res.iterations < params_.max_iter && r2 > target) {
      // --- Communication-free phase: s matvecs of basis generation.  Each
      // power is scaled by its own norm to keep the monomial basis from
      // overflowing/degenerating; the scaling is a *local* choice (uses the
      // previous, already-known norm — no extra sync).
      blas::copy(v[0], r);
      const T inv_r = static_cast<T>(1.0 / std::sqrt(r2));
      blas::scale(inv_r, v[0]);
      for (int j = 0; j < s_; ++j) {
        op_.apply(v[j + 1], v[j]);
        ++res.matvecs;
      }

      // --- One fused reduction: Gram matrix G = W^H W and projections
      // g = W^H r, with W = [v1..vs] (distributed: a single allreduce of
      // s^2 + s complex numbers).
      SmallMatrix<T> gram(s_, s_);
      std::vector<Complex<T>> proj(s_);
      for (int i = 0; i < s_; ++i) {
        for (int j = 0; j < s_; ++j) {
          const complexd d = blas::cdot(v[i + 1], v[j + 1]);
          gram(i, j) = Complex<T>(static_cast<T>(d.re), static_cast<T>(d.im));
        }
        const complexd p = blas::cdot(v[i + 1], r);
        proj[i] = Complex<T>(static_cast<T>(p.re), static_cast<T>(p.im));
      }
      ++res.reductions;

      // --- Small dense solve for the least-squares coefficients
      // (minimizes |r - W y| via the normal equations; s x s, local).
      const LuFactor<T> lu(gram);
      lu.solve(proj.data());

      // --- Update x += sum_j y_j V[j], r -= sum_j y_j W[j].
      for (int j = 0; j < s_; ++j) {
        blas::caxpy(proj[j], v[j], x);
        blas::caxpy(Complex<T>{} - proj[j], v[j + 1], r);
      }

      // True residual recompute (one matvec) guards against monomial-basis
      // drift; its norm doubles as the convergence check.
      op_.apply(v[0], x);
      ++res.matvecs;
      blas::xpay(b, T(-1), v[0]);
      blas::copy(r, v[0]);
      r2 = blas::norm2(r);
      ++res.reductions;
      res.iterations += s_;
      if (params_.record_history)
        res.residual_history.push_back(std::sqrt(r2 / b2));
    }

    res.final_rel_residual = std::sqrt(r2 / b2);
    res.converged = r2 <= target;
    res.seconds = timer.seconds();
    return res;
  }

 private:
  const LinearOperator<T>& op_;
  SolverParams params_;
  int s_;
};

}  // namespace qmg
