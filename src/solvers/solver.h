#pragma once
// Common solver parameter and result types.

#include <string>
#include <vector>

#include "solvers/linear_operator.h"

namespace qmg {

struct SolverParams {
  double tol = 1e-8;          // target relative residual |r|/|b|
  int max_iter = 1000;        // iteration cap
  int restart = 10;           // Krylov subspace size (GCR)
  double omega = 0.85;        // MR relaxation factor
  double reliable_delta = 0;  // residual-drop factor triggering a reliable
                              // update (0 = disabled)
  bool record_history = false;
  std::string name;           // label used in verbose logging
};

struct SolverResult {
  int iterations = 0;
  bool converged = false;
  double final_rel_residual = 0.0;
  long matvecs = 0;
  /// Global synchronization points (fused dot-product batches).  In a
  /// distributed run each costs one allreduce; communication-avoiding
  /// solvers exist to minimize this count (section 9).
  long reductions = 0;
  double seconds = 0.0;
  std::vector<double> residual_history;  // |r|/|b| per iteration if recorded
};

/// Abstract preconditioner: out ~= M^{-1} in.  MG plugs in here.
template <typename T>
class Preconditioner {
 public:
  using Field = ColorSpinorField<T>;
  virtual ~Preconditioner() = default;
  virtual void operator()(Field& out, const Field& in) = 0;
};

/// Identity preconditioner (turns preconditioned solvers into plain ones).
template <typename T>
class IdentityPreconditioner : public Preconditioner<T> {
 public:
  using Field = typename Preconditioner<T>::Field;
  void operator()(Field& out, const Field& in) override {
    for (long i = 0; i < in.size(); ++i) out.data()[i] = in.data()[i];
  }
};

}  // namespace qmg
