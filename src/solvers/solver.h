#pragma once
// Common solver parameter and result types.

#include <algorithm>
#include <string>
#include <vector>

#include "solvers/linear_operator.h"

namespace qmg {

struct SolverParams {
  double tol = 1e-8;          // target relative residual |r|/|b|
  int max_iter = 1000;        // iteration cap
  int restart = 10;           // Krylov subspace size (GCR)
  double omega = 0.85;        // MR relaxation factor
  double reliable_delta = 0;  // residual-drop factor triggering a reliable
                              // update (0 = disabled)
  bool record_history = false;
  std::string name;           // label used in verbose logging
};

struct SolverResult {
  int iterations = 0;
  bool converged = false;
  double final_rel_residual = 0.0;
  long matvecs = 0;
  /// Global synchronization points (fused dot-product batches).  In a
  /// distributed run each costs one allreduce; communication-avoiding
  /// solvers exist to minimize this count (section 9).
  long reductions = 0;
  double seconds = 0.0;
  std::vector<double> residual_history;  // |r|/|b| per iteration if recorded
};

/// Per-rhs results of a block (multi-rhs) solve, plus batch-level stats.
struct BlockSolverResult {
  std::vector<SolverResult> rhs;  // one entry per right-hand side
  /// Batched operator applications (each advances every rhs at once).
  long block_matvecs = 0;
  /// Batched reduction syncs: every fused block_norm2 / block_cdot /
  /// block_gram call counts ONCE however many rhs (and basis vectors) it
  /// carries — one block reduction = one global synchronization = one
  /// allreduce in a distributed run.  All block solvers count with this
  /// convention (one increment per batched reduction call, setup and final
  /// norms included), so block_reductions is directly comparable across
  /// standard / CA / pipelined solvers and reconciles against CommStats
  /// allreduce meters when the solver routes its syncs through dist::.
  /// The per-rhs SolverResult::reductions entries instead count the
  /// in-iteration syncs each rhs actively participated in (its share of
  /// the work, matching the single-rhs solvers' accounting) — summing them
  /// over rhs does NOT give a sync count.
  long block_reductions = 0;
  double seconds = 0.0;

  bool all_converged() const {
    for (const auto& r : rhs)
      if (!r.converged) return false;
    return !rhs.empty();
  }
  int max_iterations() const {
    int m = 0;
    for (const auto& r : rhs) m = std::max(m, r.iterations);
    return m;
  }
};

/// Abstract preconditioner: out ~= M^{-1} in.  MG plugs in here.
template <typename T>
class Preconditioner {
 public:
  using Field = ColorSpinorField<T>;
  virtual ~Preconditioner() = default;
  virtual void operator()(Field& out, const Field& in) = 0;
};

/// Block preconditioner: out_k ~= M^{-1} in_k for every rhs of a block.
/// The batched MG cycle plugs in here.
template <typename T>
class BlockPreconditioner {
 public:
  using BlockField = BlockSpinor<T>;
  virtual ~BlockPreconditioner() = default;
  virtual void operator()(BlockField& out, const BlockField& in) = 0;
};

/// Identity preconditioner (turns preconditioned solvers into plain ones).
template <typename T>
class IdentityPreconditioner : public Preconditioner<T> {
 public:
  using Field = typename Preconditioner<T>::Field;
  void operator()(Field& out, const Field& in) override {
    for (long i = 0; i < in.size(); ++i) out.data()[i] = in.data()[i];
  }
};

}  // namespace qmg
