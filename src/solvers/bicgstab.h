#pragma once
// BiCGStab (van der Vorst) — the production baseline solver for the
// non-Hermitian Wilson-Clover system (paper section 3.3), here with the
// reliable-update scheme used by QUDA's mixed-precision solvers: whenever
// the iterated residual has dropped by `reliable_delta` relative to the last
// reliable point, the true residual b - Mx is recomputed in full precision,
// arresting the drift of the iterated residual.

#include "fields/blas.h"
#include "solvers/solver.h"
#include "util/timer.h"

namespace qmg {

template <typename T>
class BiCgStabSolver {
 public:
  BiCgStabSolver(const LinearOperator<T>& op, SolverParams params)
      : op_(op), params_(params) {}

  SolverResult solve(ColorSpinorField<T>& x, const ColorSpinorField<T>& b) {
    Timer timer;
    SolverResult res;
    auto r = op_.create_vector();
    auto r0 = op_.create_vector();
    auto p = op_.create_vector();
    auto v = op_.create_vector();
    auto t = op_.create_vector();

    op_.apply(r, x);
    ++res.matvecs;
    blas::xpay(b, T(-1), r);
    blas::copy(r0, r);
    blas::copy(p, r);

    const double b2 = blas::norm2(b);
    if (b2 == 0.0) {
      blas::zero(x);
      res.converged = true;
      res.seconds = timer.seconds();
      return res;
    }
    const double target = params_.tol * params_.tol * b2;

    complexd rho = blas::cdot(r0, r);
    double r2 = blas::norm2(r);
    double r2_reliable = r2;  // |r|^2 at the last reliable update

    while (res.iterations < params_.max_iter && r2 > target) {
      op_.apply(v, p);
      ++res.matvecs;
      const complexd r0v = blas::cdot(r0, v);
      if (std::abs(r0v.re) + std::abs(r0v.im) == 0.0) break;
      const complexd alpha = rho / r0v;
      // s = r - alpha v  (reuse r as s).
      blas::caxpy(Complex<T>(static_cast<T>(-alpha.re),
                             static_cast<T>(-alpha.im)),
                  v, r);
      op_.apply(t, r);
      ++res.matvecs;
      const double t2 = blas::norm2(t);
      if (t2 == 0.0) {
        // s is already the exact correction direction.
        blas::caxpy(Complex<T>(static_cast<T>(alpha.re),
                               static_cast<T>(alpha.im)),
                    p, x);
        r2 = blas::norm2(r);
        ++res.iterations;
        break;
      }
      const complexd ts = blas::cdot(t, r);
      const complexd omega = {ts.re / t2, ts.im / t2};
      // x += alpha p + omega s.
      blas::caxpy(Complex<T>(static_cast<T>(alpha.re),
                             static_cast<T>(alpha.im)),
                  p, x);
      blas::caxpy(Complex<T>(static_cast<T>(omega.re),
                             static_cast<T>(omega.im)),
                  r, x);
      // r = s - omega t.
      blas::caxpy(Complex<T>(static_cast<T>(-omega.re),
                             static_cast<T>(-omega.im)),
                  t, r);
      r2 = blas::norm2(r);

      // Reliable update: recompute the true residual when the iterated one
      // has fallen far below the last reliable point.
      if (params_.reliable_delta > 0 &&
          r2 < params_.reliable_delta * params_.reliable_delta * r2_reliable) {
        op_.apply(r, x);
        ++res.matvecs;
        blas::xpay(b, T(-1), r);
        r2 = blas::norm2(r);
        r2_reliable = r2;
        blas::copy(r0, r);
        blas::copy(p, r);
        rho = blas::cdot(r0, r);
        ++res.iterations;
        if (params_.record_history)
          res.residual_history.push_back(std::sqrt(r2 / b2));
        continue;
      }

      const complexd rho_new = blas::cdot(r0, r);
      const complexd beta = (rho_new / rho) * (alpha / omega);
      rho = rho_new;
      // p = r + beta (p - omega v).
      blas::caxpy(Complex<T>(static_cast<T>(-omega.re),
                             static_cast<T>(-omega.im)),
                  v, p);
      blas::cxpay(r, Complex<T>(static_cast<T>(beta.re),
                                static_cast<T>(beta.im)),
                  p);
      ++res.iterations;
      if (params_.record_history)
        res.residual_history.push_back(std::sqrt(r2 / b2));
    }
    res.final_rel_residual = std::sqrt(r2 / b2);
    res.converged = r2 <= target;
    res.seconds = timer.seconds();
    return res;
  }

 private:
  const LinearOperator<T>& op_;
  SolverParams params_;
};

}  // namespace qmg
