#pragma once
// Masked block (multi-right-hand-side) Minimal Residual iteration — the MG
// smoother of paper section 7.1 lifted to the MRHS execution model of
// section 9.  This was the last non-batched stage of the block K-cycle:
// Multigrid::smooth_block used to stream every rhs through the single-rhs
// MrSolver because MR keeps per-rhs iterate state (residual, omega-scaled
// step).  Here that state is a vector: all N systems advance in lockstep so
// every operator application is one batched apply_block and every reduction
// one batched per-rhs block_norm2/block_cdot.
//
// Per-rhs bit-identity contract (mirrors solvers/block_gcr.h): for each rhs
// k the arithmetic sequence — residual, <Ar,Ar>, <Ar,r>, the T-precision
// alpha = <Ar,r>/<Ar,Ar> step scaled by omega — is exactly MrSolver's, and
// the block BLAS reductions are bit-identical per rhs to the single-field
// ones, so the iterates equal an independent MrSolver solve bit for bit
// whenever the operator's apply_block is per-rhs bit-identical to apply()
// (true of every batched operator in this codebase at a fixed kernel
// config).
//
// Breakdown guard (the bug this solver also fixes): MR's step divides by
// <Ar,Ar>.  In fixed-iteration smoother mode (tol = 0) a zero — or
// converged — rhs reaches that division with Ar = 0; unguarded, the NaN
// step would poison the shared block storage for every rhs.  Each rhs is
// therefore masked out (frozen, iterate kept) the moment its denominator
// stops being a positive finite number, matching the single-rhs solver's
// `break` on the same condition, and a rhs with b = 0 is masked up front
// with x = 0 exactly like MrSolver's early return.

#include <cmath>
#include <vector>

#include "fields/blas.h"
#include "solvers/solver.h"
#include "util/timer.h"

namespace qmg {

template <typename T>
class BlockMrSolver {
 public:
  using BlockField = BlockSpinor<T>;

  BlockMrSolver(const LinearOperator<T>& op, SolverParams params)
      : op_(op), params_(params) {}

  /// Solve M x_k = b_k for every rhs starting from the current x.  When
  /// params.tol == 0 runs exactly params.max_iter lockstep iterations
  /// (smoother mode); otherwise each rhs is masked out once its relative
  /// residual passes tol.
  BlockSolverResult solve(BlockField& x, const BlockField& b) {
    Timer timer;
    const int nrhs = b.nrhs();
    BlockSolverResult res;
    res.rhs.assign(static_cast<size_t>(nrhs), SolverResult{});

    auto r = b.similar();
    op_.apply_block(r, x);
    ++res.block_matvecs;
    const std::vector<T> minus_one(static_cast<size_t>(nrhs), T(-1));
    blas::block_xpay(b, minus_one, r);

    // Sync accounting: every batched reduction call counts once in
    // block_reductions (one fused allreduce each, whatever nrhs), the
    // convention shared by all block solvers — see
    // BlockSolverResult::block_reductions.
    const std::vector<double> b2 = blas::block_norm2(b);
    ++res.block_reductions;
    // Mask of rhs still iterating; b_k = 0 freezes immediately with
    // x_k = 0 (matching the single-rhs early return).
    blas::RhsMask active(static_cast<size_t>(nrhs), 1);
    for (int k = 0; k < nrhs; ++k) {
      // The initial residual apply computed every rhs, zero b included —
      // matvecs = 1 all around, matching MrSolver's accounting before its
      // early return.
      res.rhs[static_cast<size_t>(k)].matvecs = 1;
      if (b2[static_cast<size_t>(k)] == 0.0) {
        active[static_cast<size_t>(k)] = 0;
        res.rhs[static_cast<size_t>(k)].converged = true;
        for (long i = 0; i < x.rhs_size(); ++i) x.at(i, k) = Complex<T>{};
      }
    }

    const T omega = static_cast<T>(params_.omega);
    std::vector<double> r2 = blas::block_norm2(r);
    ++res.block_reductions;
    auto iterating = [&](int k) {
      if (active[static_cast<size_t>(k)] == 0 ||
          res.rhs[static_cast<size_t>(k)].iterations >= params_.max_iter)
        return false;
      return !(params_.tol > 0 &&
               std::sqrt(r2[static_cast<size_t>(k)] /
                         b2[static_cast<size_t>(k)]) < params_.tol);
    };
    auto any_iterating = [&]() {
      for (int k = 0; k < nrhs; ++k)
        if (iterating(k)) return true;
      return false;
    };

    auto mr = b.similar();
    while (any_iterating()) {
      // Mask snapshot for this lockstep iteration: exactly the rhs whose
      // independent MrSolver would execute it.
      blas::RhsMask step(static_cast<size_t>(nrhs), 0);
      for (int k = 0; k < nrhs; ++k)
        step[static_cast<size_t>(k)] = iterating(k) ? 1 : 0;

      op_.apply_block(mr, r);
      ++res.block_matvecs;
      const std::vector<double> mr2 = blas::block_norm2(mr);
      const std::vector<complexd> alpha_d = blas::block_cdot(mr, r);
      res.block_reductions += 2;
      std::vector<Complex<T>> step_coef(static_cast<size_t>(nrhs));
      std::vector<Complex<T>> neg_coef(static_cast<size_t>(nrhs));
      for (int k = 0; k < nrhs; ++k) {
        if (!step[static_cast<size_t>(k)]) continue;
        ++res.rhs[static_cast<size_t>(k)].matvecs;
        const double d = mr2[static_cast<size_t>(k)];
        if (!(d > 0.0) || !std::isfinite(d)) {
          // Denominator breakdown (zero/NaN residual): freeze this rhs
          // permanently instead of letting alpha = <Ar,r>/<Ar,Ar> go NaN
          // and poison the whole block (single-rhs MrSolver breaks here).
          active[static_cast<size_t>(k)] = 0;
          step[static_cast<size_t>(k)] = 0;
          continue;
        }
        const Complex<T> alpha(
            static_cast<T>(alpha_d[static_cast<size_t>(k)].re / d),
            static_cast<T>(alpha_d[static_cast<size_t>(k)].im / d));
        step_coef[static_cast<size_t>(k)] = alpha * omega;
        neg_coef[static_cast<size_t>(k)] = -(alpha * omega);
      }
      blas::block_caxpy(step_coef, r, x, &step);
      blas::block_caxpy(neg_coef, mr, r, &step);
      const std::vector<double> r2_new = blas::block_norm2(r);
      ++res.block_reductions;
      for (int k = 0; k < nrhs; ++k) {
        if (!step[static_cast<size_t>(k)]) continue;
        r2[static_cast<size_t>(k)] = r2_new[static_cast<size_t>(k)];
        auto& rk = res.rhs[static_cast<size_t>(k)];
        rk.reductions += 3;  // |Ar|^2, <Ar,r>, |r|^2
        ++rk.iterations;
        if (params_.record_history)
          rk.residual_history.push_back(
              std::sqrt(r2[static_cast<size_t>(k)] /
                        b2[static_cast<size_t>(k)]));
      }
    }

    for (int k = 0; k < nrhs; ++k) {
      auto& rk = res.rhs[static_cast<size_t>(k)];
      rk.seconds = timer.seconds();
      if (b2[static_cast<size_t>(k)] == 0.0) continue;  // converged above
      rk.final_rel_residual =
          std::sqrt(r2[static_cast<size_t>(k)] / b2[static_cast<size_t>(k)]);
      rk.converged = params_.tol > 0
                         ? rk.final_rel_residual < params_.tol
                         : true;
    }
    res.seconds = timer.seconds();
    return res;
  }

 private:
  const LinearOperator<T>& op_;
  SolverParams params_;
};

/// Batched MR iterations packaged as a BlockPreconditioner (the block MG
/// smoother in non-Schur form).
template <typename T>
class BlockMrPreconditioner : public BlockPreconditioner<T> {
 public:
  using BlockField = typename BlockPreconditioner<T>::BlockField;

  BlockMrPreconditioner(const LinearOperator<T>& op, int iters, double omega)
      : op_(op) {
    params_.tol = 0;  // fixed iteration count
    params_.max_iter = iters;
    params_.omega = omega;
  }

  void operator()(BlockField& out, const BlockField& in) override {
    blas::block_zero(out);
    BlockMrSolver<T>(op_, params_).solve(out, in);
  }

 private:
  const LinearOperator<T>& op_;
  SolverParams params_;
};

}  // namespace qmg
