#pragma once
// Pipelined block GCR — the latency-HIDING counterpart of the
// latency-AVOIDING s-step solver (solvers/block_ca_gmres.h): instead of
// fusing s matvecs' worth of coefficients into one sync, every iteration
// keeps exactly ONE fused sync (dist::block_pipeline_dots) and posts it on
// the persistent reduction comm worker so it overlaps with the next
// matvec — the Ghysels-style pipelining the PR-3 comm machinery was built
// for.  The overlapped matvec may itself be an overlapped distributed
// apply: its halo exchange runs on CommWorker::instance() while the
// posted combine runs on CommWorker::reduction_instance().
//
// Recurrence structure (unpreconditioned GCR with recurred A-images):
// alongside the orthonormal images w_j and their preimages z_j (M z_j =
// w_j, the standard GCR history) the solver carries u_j = M w_j.  With
// d = M r maintained by the recurrence d -= a u_new, the iteration's raw
// direction pair (z_raw, v) = (r, d) is available BEFORE the sync — so
// the sync's inputs (c_j = <w_j, v>, projections, |v|^2, |r|^2) and the
// next matvec's input (v itself, producing u_raw = M v) are independent,
// and the two run concurrently:
//
//   post   { c_j, <w_j,r>, <v,r>, |v|^2, |r|^2 }   on the reduction worker
//   run    u_raw = M v                              on the compute pool
//   wait; then locally:  nu^2 = |v|^2 - sum |c_j|^2   (breakdown guard)
//          w_new = (v - sum c_j w_j) / nu   (and z_new, u_new likewise)
//          a = (<v,r> - sum conj(c_j) <w_j,r>) / nu
//          x += a z_new;  r -= a w_new;  d -= a u_new
//          |r_new|^2 = |r|^2 - |a|^2      (one-step recurrence from the
//                                          sync's exact |r|^2)
//
// The posted combine computes with the comm-worker launch policy (Serial —
// the pool is busy with the matvec and ThreadPool::run is single-caller);
// the deterministic chunked reductions make that bit-identical to any
// other backend, and the synchronous reference execution (pipeline off)
// calls the identical function inline with the identical policy — so
// pipelined and synchronous solves are bit-identical by construction
// (tested across backends, thread counts, and distributed adapters).
//
// Cost per iteration: 1 matvec + 1 sync (vs standard block GCR's 3 + j
// syncs), with min(combine, matvec) of each sync's wall time hidden —
// metered in CommStats::allreduce_hidden_seconds.  The price is the
// recurrence's extra rounding (u-recurred A-images, recurred residual
// norm); the restart's true-residual recompute bounds the drift exactly
// like standard GCR's, and final convergence is reported against a true
// residual.
//
// Masking follows block_gcr.h: zero rhs converge immediately with x = 0, a
// converged rhs freezes, and a direction collapse (nu^2 <= 0 or
// non-finite — the recurrence analog of |w| = 0) stalls that rhs
// permanently while the batch continues.

#include <algorithm>
#include <cmath>
#include <vector>

#include "comm/comm_worker.h"
#include "comm/dist_blas.h"
#include "fields/blas.h"
#include "solvers/solver.h"
#include "util/timer.h"

namespace qmg {

template <typename T>
class PipelinedBlockGcrSolver {
 public:
  using BlockField = BlockSpinor<T>;

  /// `pipeline` false runs the synchronous reference: the identical
  /// arithmetic with the combine inline instead of posted (bit-identical
  /// results, no overlap).  `comm`, when given, meters every sync.
  PipelinedBlockGcrSolver(const LinearOperator<T>& op, SolverParams params,
                          bool pipeline = true, CommStats* comm = nullptr)
      : op_(op), params_(params), pipeline_(pipeline), comm_(comm) {}

  BlockSolverResult solve(BlockField& x, const BlockField& b) {
    Timer timer;
    const int nrhs = b.nrhs();
    const int k_max = params_.restart;
    BlockSolverResult res;
    res.rhs.assign(static_cast<size_t>(nrhs), SolverResult{});

    auto r = b.similar();
    op_.apply_block(r, x);
    ++res.block_matvecs;
    const std::vector<T> minus_one(static_cast<size_t>(nrhs), T(-1));
    blas::block_xpay(b, minus_one, r);

    const std::vector<double> b2 =
        dist::block_norm2(b, comm_, comm_worker_policy());
    std::vector<double> r2 = dist::block_norm2(r, comm_, comm_worker_policy());
    res.block_reductions += 2;
    std::vector<double> target(static_cast<size_t>(nrhs), 0.0);
    blas::RhsMask active(static_cast<size_t>(nrhs), 1);
    for (int k = 0; k < nrhs; ++k) {
      target[static_cast<size_t>(k)] =
          params_.tol * params_.tol * b2[static_cast<size_t>(k)];
      if (b2[static_cast<size_t>(k)] == 0.0) {
        active[static_cast<size_t>(k)] = 0;
        res.rhs[static_cast<size_t>(k)].converged = true;
        for (long i = 0; i < x.rhs_size(); ++i) x.at(i, k) = Complex<T>{};
      } else {
        res.rhs[static_cast<size_t>(k)].matvecs = 1;
      }
    }

    auto converged = [&](int k) {
      return r2[static_cast<size_t>(k)] <= target[static_cast<size_t>(k)];
    };
    auto iterating = [&](int k) {
      return active[static_cast<size_t>(k)] != 0 &&
             res.rhs[static_cast<size_t>(k)].iterations < params_.max_iter &&
             !converged(k);
    };
    auto any_iterating = [&]() {
      for (int k = 0; k < nrhs; ++k)
        if (iterating(k)) return true;
      return false;
    };

    auto d = b.similar();      // d = M r, maintained by recurrence
    auto u_raw = b.similar();  // M v, the overlapped matvec's output
    std::vector<BlockField> w;  // orthonormal images
    std::vector<BlockField> z;  // preimages (search directions)
    std::vector<BlockField> u;  // recurred A-images u_j = M w_j
    bool have_d = false;
    while (any_iterating()) {
      if (!have_d) {
        op_.apply_block(d, r);
        ++res.block_matvecs;
        for (int k = 0; k < nrhs; ++k)
          if (iterating(k)) ++res.rhs[static_cast<size_t>(k)].matvecs;
        have_d = true;
      }
      w.clear();
      z.clear();
      u.clear();
      for (int k_dir = 0; k_dir < k_max && any_iterating(); ++k_dir) {
        blas::RhsMask step(static_cast<size_t>(nrhs), 0);
        for (int k = 0; k < nrhs; ++k)
          step[static_cast<size_t>(k)] = iterating(k) ? 1 : 0;

        std::vector<const BlockField*> hist(w.size());
        for (size_t j = 0; j < w.size(); ++j) hist[j] = &w[j];

        // The single fused sync, overlapped with the next matvec.  The
        // combine reads {w_j, d, r} and the matvec reads d / writes u_raw
        // — disjoint writes, so the only ordering needed is the worker
        // wait() below (the CI TSan job guards the protocol).
        dist::BlockPipelineDots dots;
        if (pipeline_) {
          CommWorker& worker = CommWorker::reduction_instance();
          double combine_seconds = 0;
          worker.submit([&] {
            Timer t;
            dots = dist::block_pipeline_dots(hist, d, r, comm_,
                                             comm_worker_policy());
            combine_seconds = t.seconds();
          });
          Timer t_mv;
          try {
            op_.apply_block(u_raw, d);
          } catch (...) {
            worker.wait();  // the job holds references into this frame
            throw;
          }
          const double matvec_seconds = t_mv.seconds();
          worker.wait();
          if (comm_)
            comm_->allreduce_hidden_seconds +=
                std::min(combine_seconds, matvec_seconds);
        } else {
          dots = dist::block_pipeline_dots(hist, d, r, comm_,
                                           comm_worker_policy());
          op_.apply_block(u_raw, d);
        }
        ++res.block_matvecs;
        ++res.block_reductions;

        // Local recurrences per active rhs.
        const int h = dots.nhist;
        std::vector<T> inv_nu(static_cast<size_t>(nrhs), T(1));
        std::vector<Complex<T>> a(static_cast<size_t>(nrhs), Complex<T>{});
        std::vector<Complex<T>> ma(static_cast<size_t>(nrhs), Complex<T>{});
        for (int k = 0; k < nrhs; ++k) {
          if (!step[static_cast<size_t>(k)]) continue;
          double nu2 = dots.v2[static_cast<size_t>(k)];
          for (int j = 0; j < h; ++j) {
            const complexd cj = dots.c[static_cast<size_t>(j) * nrhs + k];
            nu2 -= cj.re * cj.re + cj.im * cj.im;
          }
          if (!(nu2 > 0.0) || !std::isfinite(nu2)) {
            // Direction collapse (recurrence analog of |w| = 0): stall
            // this rhs permanently.
            active[static_cast<size_t>(k)] = 0;
            step[static_cast<size_t>(k)] = 0;
            continue;
          }
          const double nu = std::sqrt(nu2);
          inv_nu[static_cast<size_t>(k)] = static_cast<T>(1.0 / nu);
          complexd num = dots.pv[static_cast<size_t>(k)];
          for (int j = 0; j < h; ++j) {
            const complexd cj = dots.c[static_cast<size_t>(j) * nrhs + k];
            const complexd pj = dots.pw[static_cast<size_t>(j) * nrhs + k];
            // num -= conj(c_j) * p_j
            num.re -= cj.re * pj.re + cj.im * pj.im;
            num.im -= cj.re * pj.im - cj.im * pj.re;
          }
          a[static_cast<size_t>(k)] = Complex<T>(
              static_cast<T>(num.re / nu), static_cast<T>(num.im / nu));
          ma[static_cast<size_t>(k)] =
              Complex<T>{} - a[static_cast<size_t>(k)];
        }

        // Batched orthonormalization of (v, z_raw, u_raw) = (d, r, u_raw)
        // against the history — local AXPYs, no syncs.
        w.emplace_back(b.similar());
        z.emplace_back(b.similar());
        u.emplace_back(b.similar());
        // Unmasked copies (block_gcr idiom): non-stepping columns get the
        // raw finite data rather than uninitialized storage — they are
        // never read for a frozen rhs, but the fused history dots stream
        // every column and must stay NaN-free.
        blas::block_copy(w.back(), d);
        blas::block_copy(z.back(), r);
        blas::block_copy(u.back(), u_raw);
        for (int j = 0; j < h; ++j) {
          std::vector<Complex<T>> mc(static_cast<size_t>(nrhs), Complex<T>{});
          for (int k = 0; k < nrhs; ++k) {
            if (!step[static_cast<size_t>(k)]) continue;
            const complexd cj = dots.c[static_cast<size_t>(j) * nrhs + k];
            mc[static_cast<size_t>(k)] =
                Complex<T>(static_cast<T>(-cj.re), static_cast<T>(-cj.im));
          }
          blas::block_caxpy(mc, w[static_cast<size_t>(j)], w.back(), &step);
          blas::block_caxpy(mc, z[static_cast<size_t>(j)], z.back(), &step);
          blas::block_caxpy(mc, u[static_cast<size_t>(j)], u.back(), &step);
        }
        blas::block_scale(inv_nu, w.back(), &step);
        blas::block_scale(inv_nu, z.back(), &step);
        blas::block_scale(inv_nu, u.back(), &step);

        // Solution/residual/d updates and the recurred residual norm
        // (|r_new|^2 = |r|^2 - |a|^2, from the sync's exact |r|^2).
        blas::block_caxpy(a, z.back(), x, &step);
        blas::block_caxpy(ma, w.back(), r, &step);
        blas::block_caxpy(ma, u.back(), d, &step);
        for (int k = 0; k < nrhs; ++k) {
          if (!step[static_cast<size_t>(k)]) continue;
          const Complex<T>& ak = a[static_cast<size_t>(k)];
          const double a2 = static_cast<double>(ak.re) * ak.re +
                            static_cast<double>(ak.im) * ak.im;
          r2[static_cast<size_t>(k)] =
              std::max(0.0, dots.r2[static_cast<size_t>(k)] - a2);
          auto& rk = res.rhs[static_cast<size_t>(k)];
          ++rk.matvecs;
          ++rk.reductions;  // the one fused sync
          ++rk.iterations;
          if (params_.record_history)
            rk.residual_history.push_back(std::sqrt(
                r2[static_cast<size_t>(k)] / b2[static_cast<size_t>(k)]));
        }
      }
      // Restart: true-residual recompute sheds recurrence drift (both in r
      // and in d, which is recomputed at the top of the loop).
      blas::RhsMask restart(static_cast<size_t>(nrhs), 0);
      bool any_restart = false;
      for (int k = 0; k < nrhs; ++k) {
        if (active[static_cast<size_t>(k)] != 0 && !converged(k) &&
            res.rhs[static_cast<size_t>(k)].iterations < params_.max_iter) {
          restart[static_cast<size_t>(k)] = 1;
          any_restart = true;
        }
      }
      if (!any_restart) break;
      op_.apply_block(r, x);
      ++res.block_matvecs;
      blas::block_xpay(b, minus_one, r);
      const std::vector<double> r2_true =
          dist::block_norm2(r, comm_, comm_worker_policy());
      ++res.block_reductions;
      for (int k = 0; k < nrhs; ++k) {
        if (restart[static_cast<size_t>(k)]) {
          r2[static_cast<size_t>(k)] = r2_true[static_cast<size_t>(k)];
          ++res.rhs[static_cast<size_t>(k)].matvecs;
          ++res.rhs[static_cast<size_t>(k)].reductions;
        }
      }
      have_d = false;
    }

    // Final per-rhs true residuals (block_gcr contract).
    op_.apply_block(r, x);
    ++res.block_matvecs;
    blas::block_xpay(b, minus_one, r);
    const std::vector<double> r2_final =
        dist::block_norm2(r, comm_, comm_worker_policy());
    ++res.block_reductions;
    for (int k = 0; k < nrhs; ++k) {
      auto& rk = res.rhs[static_cast<size_t>(k)];
      rk.seconds = timer.seconds();
      if (b2[static_cast<size_t>(k)] == 0.0) continue;  // handled above
      rk.final_rel_residual = std::sqrt(r2_final[static_cast<size_t>(k)] /
                                        b2[static_cast<size_t>(k)]);
      rk.converged =
          r2_final[static_cast<size_t>(k)] <= target[static_cast<size_t>(k)];
    }
    res.seconds = timer.seconds();
    return res;
  }

 private:
  const LinearOperator<T>& op_;
  SolverParams params_;
  bool pipeline_;
  CommStats* comm_;
};

}  // namespace qmg
