#pragma once
// Abstract linear operator interface.  Solvers are written against this, so
// the same Krylov code runs on the fine Wilson-Clover operator, the even-odd
// Schur complements, and every coarse-grid operator — mirroring QUDA's
// architecture- and level-agnostic solver layer.

#include "fields/blockspinor.h"
#include "fields/colorspinor.h"

namespace qmg {

template <typename T>
class LinearOperator {
 public:
  using Field = ColorSpinorField<T>;
  using BlockField = BlockSpinor<T>;

  virtual ~LinearOperator() = default;

  /// out = M in.
  virtual void apply(Field& out, const Field& in) const = 0;

  /// out_k = M in_k for every rhs of a block spinor.  The default streams
  /// the rhs serially through apply() (bit-identical to N single applies by
  /// construction); operators with a batched (site x rhs) kernel override
  /// it to load each site's stencil once for all N rhs.
  virtual void apply_block(BlockField& out, const BlockField& in) const {
    if (out.nrhs() != in.nrhs())
      throw std::invalid_argument("apply_block: out/in rhs count mismatch");
    Field in_k = create_vector();
    Field out_k = create_vector();
    for (int k = 0; k < in.nrhs(); ++k) {
      in.extract_rhs(in_k, k);
      apply(out_k, in_k);
      out.insert_rhs(out_k, k);
    }
  }

  /// A zero block of N vectors of the shape this operator acts on.
  BlockField create_block(int nrhs) const {
    const Field proto = create_vector();
    return BlockField(proto.geometry(), proto.nspin(), proto.ncolor(), nrhs,
                      proto.subset());
  }

  /// out = M^dagger in.  Default uses gamma5-Hermiticity when available;
  /// operators without it must override.
  virtual void apply_dagger(Field& out, const Field& in) const = 0;

  /// A zero vector of the shape this operator acts on.
  virtual Field create_vector() const = 0;

  /// Floating-point operations per apply() — feeds the performance models.
  virtual double flops_per_apply() const = 0;

  /// Number of apply() calls so far (mutable counter for workload tracing).
  long apply_count() const { return apply_count_; }
  void reset_apply_count() const { apply_count_ = 0; }

  /// Record one operator application.  Public so that wrapper operators
  /// (e.g. the even-odd Schur complements, whose apply() costs one
  /// application of the underlying operator) can forward their counts to the
  /// operator they wrap, keeping per-level workload traces accurate.
  void count_apply() const { ++apply_count_; }

 private:
  mutable long apply_count_ = 0;
};

/// M^dagger M — for CG on the normal equations (CGNR).
template <typename T>
class NormalOperator : public LinearOperator<T> {
 public:
  using Field = typename LinearOperator<T>::Field;

  explicit NormalOperator(const LinearOperator<T>& m)
      : m_(m), tmp_(m.create_vector()) {}

  void apply(Field& out, const Field& in) const override {
    m_.apply(tmp_, in);
    m_.apply_dagger(out, tmp_);
  }
  void apply_dagger(Field& out, const Field& in) const override {
    apply(out, in);  // M^dag M is Hermitian
  }
  Field create_vector() const override { return m_.create_vector(); }
  double flops_per_apply() const override { return 2 * m_.flops_per_apply(); }

 private:
  const LinearOperator<T>& m_;
  mutable Field tmp_;
};

}  // namespace qmg
