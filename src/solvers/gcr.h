#pragma once
// Flexible, restarted, right-preconditioned Generalized Conjugate Residual.
//
// GCR is the outer solver of the paper's K-cycle multigrid (section 7.1):
// being flexible, it tolerates the variable preconditioner that an MR-
// smoothed MG cycle constitutes.  Krylov subspace size (restart length) is
// a parameter; the paper uses 10.

#include <memory>
#include <vector>

#include "fields/blas.h"
#include "solvers/solver.h"
#include "util/timer.h"

namespace qmg {

template <typename T>
class GcrSolver {
 public:
  /// precond == nullptr means unpreconditioned GCR.
  GcrSolver(const LinearOperator<T>& op, SolverParams params,
            Preconditioner<T>* precond = nullptr)
      : op_(op), params_(params), precond_(precond) {}

  SolverResult solve(ColorSpinorField<T>& x, const ColorSpinorField<T>& b) {
    Timer timer;
    SolverResult res;
    const int k_max = params_.restart;

    auto r = op_.create_vector();
    op_.apply(r, x);
    ++res.matvecs;
    blas::xpay(b, T(-1), r);

    const double b2 = blas::norm2(b);
    if (b2 == 0.0) {
      blas::zero(x);
      res.converged = true;
      res.seconds = timer.seconds();
      return res;
    }
    const double target = params_.tol * params_.tol * b2;

    std::vector<ColorSpinorField<T>> z;  // preconditioned directions
    std::vector<ColorSpinorField<T>> w;  // M z, orthonormalized
    z.reserve(k_max);
    w.reserve(k_max);

    double r2 = blas::norm2(r);
    while (res.iterations < params_.max_iter && r2 > target) {
      z.clear();
      w.clear();
      for (int k = 0; k < k_max && res.iterations < params_.max_iter &&
                      r2 > target;
           ++k) {
        // New direction: z_k = K(r), w_k = M z_k.
        z.emplace_back(op_.create_vector());
        if (precond_) {
          (*precond_)(z.back(), r);
        } else {
          blas::copy(z.back(), r);
        }
        w.emplace_back(op_.create_vector());
        op_.apply(w.back(), z.back());
        ++res.matvecs;

        // Modified Gram-Schmidt against previous w's, mirrored on z.  Each
        // projection is a separate global reduction: MGS cannot batch them,
        // which is exactly the synchronization cost CA-GMRES removes.
        for (int j = 0; j < k; ++j) {
          const complexd c = blas::cdot(w[j], w.back());
          ++res.reductions;
          const Complex<T> ct(static_cast<T>(-c.re), static_cast<T>(-c.im));
          blas::caxpy(ct, w[j], w.back());
          blas::caxpy(ct, z[j], z.back());
        }
        const double w2 = blas::norm2(w.back());
        if (w2 == 0.0) break;
        const T inv_norm = static_cast<T>(1.0 / std::sqrt(w2));
        blas::scale(inv_norm, w.back());
        blas::scale(inv_norm, z.back());

        // Residual update (norm + projection: two more syncs per iteration).
        const complexd a = blas::cdot(w.back(), r);
        const Complex<T> at(static_cast<T>(a.re), static_cast<T>(a.im));
        blas::caxpy(at, z.back(), x);
        blas::caxpy(Complex<T>{} - at, w.back(), r);
        r2 = blas::norm2(r);
        res.reductions += 3;  // w norm, w.r projection, r norm
        ++res.iterations;
        if (params_.record_history)
          res.residual_history.push_back(std::sqrt(r2 / b2));
      }
      // Restart: recompute the true residual to shed accumulated error.
      op_.apply(r, x);
      ++res.matvecs;
      blas::xpay(b, T(-1), r);
      r2 = blas::norm2(r);
    }
    res.final_rel_residual = std::sqrt(r2 / b2);
    res.converged = r2 <= target;
    res.seconds = timer.seconds();
    return res;
  }

 private:
  const LinearOperator<T>& op_;
  SolverParams params_;
  Preconditioner<T>* precond_;
};

}  // namespace qmg
