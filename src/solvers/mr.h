#pragma once
// Minimal Residual iteration.  Used as the MG smoother (paper section 7.1:
// "four pre and post applications of minimal residual"), with relaxation
// factor omega.  Also usable as a standalone (weak) solver.

#include <cmath>

#include "fields/blas.h"
#include "solvers/solver.h"
#include "util/timer.h"

namespace qmg {

template <typename T>
class MrSolver {
 public:
  MrSolver(const LinearOperator<T>& op, SolverParams params)
      : op_(op), params_(params) {}

  /// Solve M x = b starting from the current x.  When params.tol == 0 runs
  /// exactly params.max_iter iterations (smoother mode).
  SolverResult solve(ColorSpinorField<T>& x, const ColorSpinorField<T>& b) {
    Timer timer;
    SolverResult res;
    auto r = op_.create_vector();
    auto mr = op_.create_vector();

    // r = b - M x.
    op_.apply(r, x);
    ++res.matvecs;
    blas::xpay(b, T(-1), r);

    const double b2 = blas::norm2(b);
    if (b2 == 0.0) {
      blas::zero(x);
      res.converged = true;
      res.seconds = timer.seconds();
      return res;
    }

    const T omega = static_cast<T>(params_.omega);
    double r2 = blas::norm2(r);
    while (res.iterations < params_.max_iter) {
      if (params_.tol > 0 && std::sqrt(r2 / b2) < params_.tol) break;
      op_.apply(mr, r);
      ++res.matvecs;
      // Breakdown guard for the omega update's <Ar,Ar> denominator: a zero
      // residual (fixed-iteration smoother mode on a solved/zero system)
      // must stop the iteration, not produce alpha = 0/0 NaN iterates.  The
      // negated comparison also freezes on a NaN-poisoned residual instead
      // of iterating on garbage; BlockMrSolver masks per rhs on exactly
      // this condition so the streamed and block smoothers stay
      // bit-identical.
      const double mr2 = blas::norm2(mr);
      if (!(mr2 > 0.0) || !std::isfinite(mr2)) break;
      const complexd alpha_d = blas::cdot(mr, r);
      const Complex<T> alpha(static_cast<T>(alpha_d.re / mr2),
                             static_cast<T>(alpha_d.im / mr2));
      blas::caxpy(alpha * omega, r, x);
      blas::caxpy(-(alpha * omega), mr, r);
      r2 = blas::norm2(r);
      ++res.iterations;
      if (params_.record_history)
        res.residual_history.push_back(std::sqrt(r2 / b2));
    }
    res.final_rel_residual = std::sqrt(r2 / b2);
    res.converged = params_.tol > 0 ? res.final_rel_residual < params_.tol
                                    : true;
    res.seconds = timer.seconds();
    return res;
  }

 private:
  const LinearOperator<T>& op_;
  SolverParams params_;
};

/// MR iterations packaged as a Preconditioner (the MG smoother).
template <typename T>
class MrPreconditioner : public Preconditioner<T> {
 public:
  using Field = typename Preconditioner<T>::Field;

  MrPreconditioner(const LinearOperator<T>& op, int iters, double omega)
      : op_(op) {
    params_.tol = 0;  // fixed iteration count
    params_.max_iter = iters;
    params_.omega = omega;
  }

  void operator()(Field& out, const Field& in) override {
    blas::zero(out);
    MrSolver<T>(op_, params_).solve(out, in);
  }

 private:
  const LinearOperator<T>& op_;
  SolverParams params_;
};

}  // namespace qmg
