#pragma once
// Communication-avoiding (s-step) block GMRES on the distributed coarse
// path — the paper's section 9 answer to the Fig. 4 diagnosis that the
// coarsest-grid solve is dominated by global synchronizations (refs. [35]
// CA-GMRES, [36] s-step Krylov bottom solvers).
//
// Per s-step, for all nrhs at once:
//
//   1. s batched matvecs build the monomial basis V_k = [v0, M v0, ...,
//      M^s v0] per rhs (v0 = r_k / |r_k|, a local scaling — |r_k|^2 is
//      known from the previous step's true-residual sync) with NO
//      intermediate reductions.  Through DistributedBlockCoarseOp /
//      DistributedSchurCoarseOp each matvec is one batched (optionally
//      overlapped) halo exchange.
//   2. ONE fused sync — dist::block_gram — carries every per-rhs, per-basis
//      Gram and projection partial in a single virtual MPI_Allreduce.
//   3. A local per-rhs s x s least-squares solve (normal equations via LU)
//      yields all s combination coefficients; x/r update masked per rhs.
//   4. One true-residual recompute (one batched matvec + one fused norm)
//      guards against monomial drift and doubles as the convergence check.
//
// That is 2 syncs per s+1 matvecs against standard block GCR's 3 + j per
// matvec — the >= 3x sync reduction at s = 4 that BENCH_casolver.json
// records.
//
// Basis conditioning (the CA trade-off): the monomial basis degenerates
// like kappa^s.  Each power is normalized per rhs — realized as exact
// Jacobi (diagonal) equilibration of the Gram system, algebraically
// identical to scaling column j by 1/|M^j v0| but requiring zero extra
// syncs since the norms ARE the Gram diagonal.  When the equilibrated LU
// still breaks down (singular / non-finite), the solve retries on the
// leading principal submatrix at half the depth — the basis is nested, so
// shrinking s costs nothing — and the SOLVER-LEVEL depth shrinks for
// subsequent steps (effective_s()).  A step that makes no residual
// progress shrinks the depth the same way; if depth 1 still cannot
// progress, the solver falls back to standard block GCR for the remaining
// budget (fell_back()).
//
// Per-rhs convergence masking follows block_gcr.h: a converged rhs (and a
// zero rhs) is frozen out of every update while the batch continues; its
// basis column is zero (v0 scaled by 0), so its Gram diagonal vanishes and
// the LS solve simply skips it — no NaN can enter the shared block.
//
// Sync accounting: every dist:: call counts once in block_reductions and
// meters CommStats when a stats sink is attached, so the solver's counted
// syncs reconcile exactly against the allreduce meters (tested).

#include <cmath>
#include <vector>

#include "comm/dist_blas.h"
#include "fields/blas.h"
#include "linalg/smallmat.h"
#include "solvers/block_gcr.h"
#include "solvers/solver.h"
#include "util/timer.h"

namespace qmg {

template <typename T>
class BlockCaGmresSolver {
 public:
  using BlockField = BlockSpinor<T>;

  /// `s` is the basis depth (matvecs per fused sync).  `comm`, when given,
  /// receives one allreduce meter entry per sync.
  BlockCaGmresSolver(const LinearOperator<T>& op, SolverParams params,
                     int s = 4, CommStats* comm = nullptr)
      : op_(op), params_(params), s_(s > 0 ? s : 1), comm_(comm) {}

  /// Basis depth actually in use after conditioning shrinks (== the
  /// constructor's s when the basis stayed well-conditioned).
  int effective_s() const { return effective_s_; }
  /// True when a depth-1 breakdown handed the solve off to block GCR.
  bool fell_back() const { return fell_back_; }

  BlockSolverResult solve(BlockField& x, const BlockField& b) {
    Timer timer;
    const int nrhs = b.nrhs();
    BlockSolverResult res;
    res.rhs.assign(static_cast<size_t>(nrhs), SolverResult{});
    effective_s_ = s_;
    fell_back_ = false;

    auto r = b.similar();
    op_.apply_block(r, x);
    ++res.block_matvecs;
    const std::vector<T> minus_one(static_cast<size_t>(nrhs), T(-1));
    blas::block_xpay(b, minus_one, r);

    const std::vector<double> b2 = dist::block_norm2(b, comm_);
    std::vector<double> r2 = dist::block_norm2(r, comm_);
    res.block_reductions += 2;
    std::vector<double> target(static_cast<size_t>(nrhs), 0.0);
    blas::RhsMask active(static_cast<size_t>(nrhs), 1);
    for (int k = 0; k < nrhs; ++k) {
      target[static_cast<size_t>(k)] =
          params_.tol * params_.tol * b2[static_cast<size_t>(k)];
      if (b2[static_cast<size_t>(k)] == 0.0) {
        // b_k = 0 converges immediately with x_k = 0 (block_gcr contract).
        active[static_cast<size_t>(k)] = 0;
        res.rhs[static_cast<size_t>(k)].converged = true;
        for (long i = 0; i < x.rhs_size(); ++i) x.at(i, k) = Complex<T>{};
      } else {
        res.rhs[static_cast<size_t>(k)].matvecs = 1;
      }
    }

    auto iterating = [&](int k) {
      return active[static_cast<size_t>(k)] != 0 &&
             res.rhs[static_cast<size_t>(k)].iterations < params_.max_iter &&
             r2[static_cast<size_t>(k)] > target[static_cast<size_t>(k)];
    };
    auto any_iterating = [&]() {
      for (int k = 0; k < nrhs; ++k)
        if (iterating(k)) return true;
      return false;
    };

    // Krylov basis V[0..s] as block fields; W[j] = M V[j] = V[j+1].
    std::vector<BlockField> v;
    v.reserve(static_cast<size_t>(s_) + 1);
    for (int j = 0; j <= s_; ++j) v.push_back(b.similar());

    int no_progress_streak = 0;
    while (any_iterating()) {
      const int s_cur = effective_s_;
      blas::RhsMask step(static_cast<size_t>(nrhs), 0);
      for (int k = 0; k < nrhs; ++k)
        step[static_cast<size_t>(k)] = iterating(k) ? 1 : 0;

      // --- Communication-free phase: s_cur matvecs of basis generation.
      // v0 = r / |r| per rhs, using the already-synced r2 (local scaling);
      // a frozen rhs gets the zero column (scale 0 after zeroing via copy
      // mask would leave stale data — scale the copied residual by 0).
      blas::block_copy(v[0], r);
      std::vector<T> v0_scale(static_cast<size_t>(nrhs), T(0));
      for (int k = 0; k < nrhs; ++k)
        if (step[static_cast<size_t>(k)])
          v0_scale[static_cast<size_t>(k)] =
              static_cast<T>(1.0 / std::sqrt(r2[static_cast<size_t>(k)]));
      blas::block_scale(v0_scale, v[0]);
      for (int j = 0; j < s_cur; ++j) {
        op_.apply_block(v[static_cast<size_t>(j) + 1], v[static_cast<size_t>(j)]);
        ++res.block_matvecs;
      }

      // --- ONE fused sync: all per-rhs Gram + projection partials.
      std::vector<const BlockField*> basis(static_cast<size_t>(s_cur));
      for (int j = 0; j < s_cur; ++j)
        basis[static_cast<size_t>(j)] = &v[static_cast<size_t>(j) + 1];
      const dist::BlockGramResult gram = dist::block_gram(basis, r, comm_);
      ++res.block_reductions;

      // --- Local per-rhs LS solves with Jacobi equilibration and nested
      // depth retry.  depth[k] is how many basis vectors rhs k uses this
      // step; y holds its coefficients in the ORIGINAL (unequilibrated)
      // basis.
      std::vector<int> depth(static_cast<size_t>(nrhs), 0);
      std::vector<std::vector<Complex<T>>> y(static_cast<size_t>(nrhs));
      for (int k = 0; k < nrhs; ++k) {
        if (!step[static_cast<size_t>(k)]) continue;
        int d = s_cur;
        while (d >= 1) {
          // Equilibration scales D_i = 1 / sqrt(G(i,i)): the per-power
          // normalization.  A non-positive or non-finite diagonal inside
          // the leading d x d block means the basis degenerated before
          // power d — shrink.
          bool ok = true;
          std::vector<double> dscale(static_cast<size_t>(d));
          for (int i = 0; i < d; ++i) {
            const double gii = gram.g(k, i, i).re;
            if (!(gii > 0.0) || !std::isfinite(gii)) {
              ok = false;
              break;
            }
            dscale[static_cast<size_t>(i)] = 1.0 / std::sqrt(gii);
          }
          if (ok) {
            SmallMatrix<T> g(d, d);
            std::vector<Complex<T>> rhs_d(static_cast<size_t>(d));
            for (int i = 0; i < d; ++i) {
              for (int j = 0; j < d; ++j) {
                const complexd gij = gram.g(k, i, j);
                const double sc = dscale[static_cast<size_t>(i)] *
                                  dscale[static_cast<size_t>(j)];
                g(i, j) = Complex<T>(static_cast<T>(gij.re * sc),
                                     static_cast<T>(gij.im * sc));
              }
              const complexd pi = gram.p(k, i);
              rhs_d[static_cast<size_t>(i)] =
                  Complex<T>(static_cast<T>(pi.re * dscale[static_cast<size_t>(i)]),
                             static_cast<T>(pi.im * dscale[static_cast<size_t>(i)]));
            }
            const LuFactor<T> lu(g);
            if (!lu.singular()) {
              lu.solve(rhs_d.data());
              bool finite = true;
              for (int i = 0; i < d; ++i) {
                rhs_d[static_cast<size_t>(i)] *=
                    static_cast<T>(dscale[static_cast<size_t>(i)]);
                if (!std::isfinite(
                        static_cast<double>(rhs_d[static_cast<size_t>(i)].re)) ||
                    !std::isfinite(
                        static_cast<double>(rhs_d[static_cast<size_t>(i)].im)))
                  finite = false;
              }
              if (finite) {
                depth[static_cast<size_t>(k)] = d;
                y[static_cast<size_t>(k)] = std::move(rhs_d);
                break;
              }
            }
          }
          d /= 2;
        }
        if (depth[static_cast<size_t>(k)] == 0) {
          // Even depth 1 broke down (M annihilated the residual direction):
          // hand the whole remaining solve to standard block GCR.
          fell_back_ = true;
        }
      }
      if (fell_back_) break;

      // Any rhs forced below the current depth shrinks the solver-level
      // depth for subsequent steps — the conditioning guard.
      for (int k = 0; k < nrhs; ++k)
        if (step[static_cast<size_t>(k)] &&
            depth[static_cast<size_t>(k)] < effective_s_)
          effective_s_ = depth[static_cast<size_t>(k)];

      // --- Masked batched update: x += sum_j y_j V[j], r -= sum_j y_j W[j]
      // (remember v0 = r/|r|, so the coefficients absorb no extra scale:
      // the LS already ran against the scaled basis).
      for (int j = 0; j < s_cur; ++j) {
        std::vector<Complex<T>> cj(static_cast<size_t>(nrhs), Complex<T>{});
        std::vector<Complex<T>> mcj(static_cast<size_t>(nrhs), Complex<T>{});
        bool any = false;
        for (int k = 0; k < nrhs; ++k) {
          if (!step[static_cast<size_t>(k)] ||
              j >= depth[static_cast<size_t>(k)])
            continue;
          cj[static_cast<size_t>(k)] =
              y[static_cast<size_t>(k)][static_cast<size_t>(j)];
          mcj[static_cast<size_t>(k)] =
              Complex<T>{} - cj[static_cast<size_t>(k)];
          any = true;
        }
        if (!any) continue;
        blas::block_caxpy(cj, v[static_cast<size_t>(j)], x, &step);
        blas::block_caxpy(mcj, v[static_cast<size_t>(j) + 1], r, &step);
      }

      // --- True-residual recompute: one batched matvec + one fused norm
      // (the reliable update guarding monomial drift; also the convergence
      // check for the next step).
      op_.apply_block(v[0], x);
      ++res.block_matvecs;
      blas::block_xpay(b, minus_one, v[0]);
      blas::block_copy(r, v[0], &step);
      const std::vector<double> r2_new = dist::block_norm2(r, comm_);
      ++res.block_reductions;

      bool progress = false;
      for (int k = 0; k < nrhs; ++k) {
        if (!step[static_cast<size_t>(k)]) continue;
        auto& rk = res.rhs[static_cast<size_t>(k)];
        rk.matvecs += depth[static_cast<size_t>(k)] + 1;
        rk.reductions += 2;  // the fused Gram + the true-residual norm
        rk.iterations += depth[static_cast<size_t>(k)];
        if (r2_new[static_cast<size_t>(k)] < r2[static_cast<size_t>(k)])
          progress = true;
        r2[static_cast<size_t>(k)] = r2_new[static_cast<size_t>(k)];
        if (params_.record_history)
          rk.residual_history.push_back(std::sqrt(
              r2[static_cast<size_t>(k)] / b2[static_cast<size_t>(k)]));
      }
      if (!progress) {
        // The whole step stagnated: the monomial basis is too
        // ill-conditioned at this depth.  Halve it; at depth 1 a second
        // consecutive stall means CA cannot help — fall back.
        ++no_progress_streak;
        if (effective_s_ > 1) {
          effective_s_ = effective_s_ / 2;
        } else if (no_progress_streak >= 2) {
          fell_back_ = true;
          break;
        }
      } else {
        no_progress_streak = 0;
      }
    }

    if (fell_back_) {
      // Standard block GCR finishes from the current iterate with the
      // remaining per-rhs iteration budget.  Its counts merge in; its own
      // reductions run unmetered blas (the fallback is the already-audited
      // baseline path).
      SolverParams fb = params_;
      int done = 0;
      for (int k = 0; k < nrhs; ++k)
        done = std::max(done, res.rhs[static_cast<size_t>(k)].iterations);
      fb.max_iter = std::max(1, params_.max_iter - done);
      const BlockSolverResult gcr = BlockGcrSolver<T>(op_, fb).solve(x, b);
      res.block_matvecs += gcr.block_matvecs;
      res.block_reductions += gcr.block_reductions;
      for (int k = 0; k < nrhs; ++k) {
        auto& rk = res.rhs[static_cast<size_t>(k)];
        const auto& gk = gcr.rhs[static_cast<size_t>(k)];
        rk.iterations += gk.iterations;
        rk.matvecs += gk.matvecs;
        rk.reductions += gk.reductions;
        rk.converged = gk.converged;
        rk.final_rel_residual = gk.final_rel_residual;
        rk.seconds = timer.seconds();
      }
      res.seconds = timer.seconds();
      return res;
    }

    // Final per-rhs report: r already IS the true residual (the in-loop
    // recompute), refreshed after the last update for every stepping rhs.
    for (int k = 0; k < nrhs; ++k) {
      auto& rk = res.rhs[static_cast<size_t>(k)];
      rk.seconds = timer.seconds();
      if (b2[static_cast<size_t>(k)] == 0.0) continue;  // handled above
      rk.final_rel_residual = std::sqrt(r2[static_cast<size_t>(k)] /
                                        b2[static_cast<size_t>(k)]);
      rk.converged =
          r2[static_cast<size_t>(k)] <= target[static_cast<size_t>(k)];
    }
    res.seconds = timer.seconds();
    return res;
  }

 private:
  const LinearOperator<T>& op_;
  SolverParams params_;
  int s_;
  CommStats* comm_;
  int effective_s_ = 0;
  bool fell_back_ = false;
};

}  // namespace qmg
