#pragma once
// Mixed-precision solution via defect correction with reliable updates:
// the outer loop maintains the solution and true residual in high precision
// (double); inner solves run in low precision (float, optionally with
// half-precision quantization applied to the correction, modeling QUDA's
// 16-bit fixed-point storage).  This is the structure of QUDA's
// mixed-precision BiCGStab baseline (paper sections 4 and 7.1).

#include <functional>

#include "fields/blas.h"
#include "fields/halffield.h"
#include "solvers/bicgstab.h"
#include "solvers/solver.h"
#include "util/timer.h"

namespace qmg {

/// Inner storage precision for the low-precision cycle.
enum class InnerPrecision { Single, Half };

class MixedPrecisionBiCgStab {
 public:
  /// `op_hi` and `op_lo` must represent the same matrix in double and float.
  MixedPrecisionBiCgStab(const LinearOperator<double>& op_hi,
                         const LinearOperator<float>& op_lo,
                         SolverParams params,
                         InnerPrecision inner = InnerPrecision::Half)
      : op_hi_(op_hi), op_lo_(op_lo), params_(params), inner_(inner) {}

  SolverResult solve(ColorSpinorField<double>& x,
                     const ColorSpinorField<double>& b) {
    Timer timer;
    SolverResult res;
    auto r = op_hi_.create_vector();

    op_hi_.apply(r, x);
    ++res.matvecs;
    blas::xpay(b, -1.0, r);
    const double b2 = blas::norm2(b);
    if (b2 == 0.0) {
      blas::zero(x);
      res.converged = true;
      res.seconds = timer.seconds();
      return res;
    }

    double r2 = blas::norm2(r);
    const double target = params_.tol * params_.tol * b2;
    // Each inner cycle reduces the residual by `delta` (the reliable-update
    // trigger); 10^-2..10^-3 is typical for half/single inner precision.
    const double delta =
        params_.reliable_delta > 0 ? params_.reliable_delta : 1e-2;

    while (res.iterations < params_.max_iter && r2 > target) {
      // Inner solve in low precision on the current residual.
      auto r_lo = convert<float>(r);
      if (inner_ == InnerPrecision::Half) quantize_half(r_lo);
      auto y_lo = op_lo_.create_vector();

      SolverParams inner_params = params_;
      inner_params.tol = std::max(delta, std::sqrt(target / r2) * 0.5);
      inner_params.max_iter = params_.max_iter - res.iterations;
      inner_params.reliable_delta = 0;
      BiCgStabSolver<float> inner_solver(op_lo_, inner_params);
      const SolverResult inner = inner_solver.solve(y_lo, r_lo);
      res.iterations += std::max(inner.iterations, 1);
      res.matvecs += inner.matvecs;

      // Reliable update: accumulate in double, recompute the true residual.
      if (inner_ == InnerPrecision::Half) quantize_half(y_lo);
      auto y = convert<double>(y_lo);
      blas::axpy(1.0, y, x);
      op_hi_.apply(r, x);
      ++res.matvecs;
      blas::xpay(b, -1.0, r);
      const double r2_new = blas::norm2(r);
      if (r2_new >= r2) break;  // inner cycle stalled; avoid looping forever
      r2 = r2_new;
      if (params_.record_history)
        res.residual_history.push_back(std::sqrt(r2 / b2));
    }
    res.final_rel_residual = std::sqrt(r2 / b2);
    res.converged = r2 <= target;
    res.seconds = timer.seconds();
    return res;
  }

 private:
  const LinearOperator<double>& op_hi_;
  const LinearOperator<float>& op_lo_;
  SolverParams params_;
  InnerPrecision inner_;
};

}  // namespace qmg
