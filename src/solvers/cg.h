#pragma once
// Conjugate Gradients (Hestenes-Stiefel) for Hermitian positive-definite
// operators, and CGNR (CG on the normal equations M^dag M x = M^dag b) for
// the non-Hermitian Dirac operator — the classical pre-BiCGStab baseline
// discussed in paper section 3.3.

#include "fields/blas.h"
#include "solvers/solver.h"
#include "util/timer.h"

namespace qmg {

template <typename T>
class CgSolver {
 public:
  CgSolver(const LinearOperator<T>& op, SolverParams params)
      : op_(op), params_(params) {}

  SolverResult solve(ColorSpinorField<T>& x, const ColorSpinorField<T>& b) {
    Timer timer;
    SolverResult res;
    auto r = op_.create_vector();
    auto p = op_.create_vector();
    auto ap = op_.create_vector();

    op_.apply(r, x);
    ++res.matvecs;
    blas::xpay(b, T(-1), r);
    blas::copy(p, r);

    const double b2 = blas::norm2(b);
    if (b2 == 0.0) {
      blas::zero(x);
      res.converged = true;
      res.seconds = timer.seconds();
      return res;
    }

    double r2 = blas::norm2(r);
    const double target = params_.tol * params_.tol * b2;

    while (res.iterations < params_.max_iter && r2 > target) {
      op_.apply(ap, p);
      ++res.matvecs;
      const double pap = blas::rdot(p, ap);
      if (pap <= 0.0) break;  // loss of positive-definiteness
      const T alpha = static_cast<T>(r2 / pap);
      blas::axpy(alpha, p, x);
      blas::axpy(-alpha, ap, r);
      const double r2_new = blas::norm2(r);
      const T beta = static_cast<T>(r2_new / r2);
      blas::xpay(r, beta, p);
      r2 = r2_new;
      ++res.iterations;
      if (params_.record_history)
        res.residual_history.push_back(std::sqrt(r2 / b2));
    }
    res.final_rel_residual = std::sqrt(r2 / b2);
    res.converged = r2 <= target;
    res.seconds = timer.seconds();
    return res;
  }

 private:
  const LinearOperator<T>& op_;
  SolverParams params_;
};

/// CGNR: minimizes |b - Mx| by CG on M^dag M x = M^dag b.
template <typename T>
class CgnrSolver {
 public:
  CgnrSolver(const LinearOperator<T>& op, SolverParams params)
      : op_(op), params_(params) {}

  SolverResult solve(ColorSpinorField<T>& x, const ColorSpinorField<T>& b) {
    NormalOperator<T> normal(op_);
    auto rhs = op_.create_vector();
    op_.apply_dagger(rhs, b);
    // Scale the tolerance: CG sees |M^dag r|, we want |r|/|b|.  Use the
    // same relative tolerance on the normal system; callers requiring a
    // strict true-residual bound should check the returned residual.
    CgSolver<T> cg(normal, params_);
    SolverResult res = cg.solve(x, rhs);
    // Report the true relative residual.
    auto r = op_.create_vector();
    op_.apply(r, x);
    ++res.matvecs;
    blas::xpay(b, T(-1), r);
    const double b2 = blas::norm2(b);
    res.final_rel_residual = b2 > 0 ? std::sqrt(blas::norm2(r) / b2) : 0.0;
    res.converged = res.final_rel_residual <= params_.tol * 10;
    return res;
  }

 private:
  const LinearOperator<T>& op_;
  SolverParams params_;
};

}  // namespace qmg
