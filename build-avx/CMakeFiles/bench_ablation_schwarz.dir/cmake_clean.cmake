file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_schwarz.dir/bench/bench_ablation_schwarz.cpp.o"
  "CMakeFiles/bench_ablation_schwarz.dir/bench/bench_ablation_schwarz.cpp.o.d"
  "bench_ablation_schwarz"
  "bench_ablation_schwarz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_schwarz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
