# Empty dependencies file for bench_ablation_schwarz.
# This may be replaced when dependencies are built.
