# Empty compiler generated dependencies file for bench_fig2_coarse_op.
# This may be replaced when dependencies are built.
