file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_coarse_op.dir/bench/bench_fig2_coarse_op.cpp.o"
  "CMakeFiles/bench_fig2_coarse_op.dir/bench/bench_fig2_coarse_op.cpp.o.d"
  "bench_fig2_coarse_op"
  "bench_fig2_coarse_op.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_coarse_op.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
