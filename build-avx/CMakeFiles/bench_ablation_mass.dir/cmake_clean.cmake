file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mass.dir/bench/bench_ablation_mass.cpp.o"
  "CMakeFiles/bench_ablation_mass.dir/bench/bench_ablation_mass.cpp.o.d"
  "bench_ablation_mass"
  "bench_ablation_mass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
