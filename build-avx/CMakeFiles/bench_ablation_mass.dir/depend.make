# Empty dependencies file for bench_ablation_mass.
# This may be replaced when dependencies are built.
