file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_level_breakdown.dir/bench/bench_fig4_level_breakdown.cpp.o"
  "CMakeFiles/bench_fig4_level_breakdown.dir/bench/bench_fig4_level_breakdown.cpp.o.d"
  "bench_fig4_level_breakdown"
  "bench_fig4_level_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_level_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
