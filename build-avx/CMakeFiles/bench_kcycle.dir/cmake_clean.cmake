file(REMOVE_RECURSE
  "CMakeFiles/bench_kcycle.dir/bench/bench_kcycle.cpp.o"
  "CMakeFiles/bench_kcycle.dir/bench/bench_kcycle.cpp.o.d"
  "bench_kcycle"
  "bench_kcycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kcycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
