# Empty dependencies file for bench_kcycle.
# This may be replaced when dependencies are built.
