file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_nullvecs.dir/bench/bench_ablation_nullvecs.cpp.o"
  "CMakeFiles/bench_ablation_nullvecs.dir/bench/bench_ablation_nullvecs.cpp.o.d"
  "bench_ablation_nullvecs"
  "bench_ablation_nullvecs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_nullvecs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
