# Empty dependencies file for bench_ablation_nullvecs.
# This may be replaced when dependencies are built.
