file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_eo.dir/bench/bench_ablation_eo.cpp.o"
  "CMakeFiles/bench_ablation_eo.dir/bench/bench_ablation_eo.cpp.o.d"
  "bench_ablation_eo"
  "bench_ablation_eo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_eo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
