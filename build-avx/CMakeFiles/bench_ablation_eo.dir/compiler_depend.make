# Empty compiler generated dependencies file for bench_ablation_eo.
# This may be replaced when dependencies are built.
