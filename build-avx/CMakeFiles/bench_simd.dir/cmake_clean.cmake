file(REMOVE_RECURSE
  "CMakeFiles/bench_simd.dir/bench/bench_simd.cpp.o"
  "CMakeFiles/bench_simd.dir/bench/bench_simd.cpp.o.d"
  "bench_simd"
  "bench_simd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_simd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
