# Empty dependencies file for bench_simd.
# This may be replaced when dependencies are built.
