file(REMOVE_RECURSE
  "libqmg.a"
)
