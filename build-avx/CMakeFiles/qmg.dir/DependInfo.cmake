
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/model.cpp" "CMakeFiles/qmg.dir/src/cluster/model.cpp.o" "gcc" "CMakeFiles/qmg.dir/src/cluster/model.cpp.o.d"
  "/root/repo/src/cluster/network.cpp" "CMakeFiles/qmg.dir/src/cluster/network.cpp.o" "gcc" "CMakeFiles/qmg.dir/src/cluster/network.cpp.o.d"
  "/root/repo/src/cluster/solver_model.cpp" "CMakeFiles/qmg.dir/src/cluster/solver_model.cpp.o" "gcc" "CMakeFiles/qmg.dir/src/cluster/solver_model.cpp.o.d"
  "/root/repo/src/comm/comm_worker.cpp" "CMakeFiles/qmg.dir/src/comm/comm_worker.cpp.o" "gcc" "CMakeFiles/qmg.dir/src/comm/comm_worker.cpp.o.d"
  "/root/repo/src/comm/decomposition.cpp" "CMakeFiles/qmg.dir/src/comm/decomposition.cpp.o" "gcc" "CMakeFiles/qmg.dir/src/comm/decomposition.cpp.o.d"
  "/root/repo/src/comm/dist_coarse.cpp" "CMakeFiles/qmg.dir/src/comm/dist_coarse.cpp.o" "gcc" "CMakeFiles/qmg.dir/src/comm/dist_coarse.cpp.o.d"
  "/root/repo/src/comm/dist_spinor.cpp" "CMakeFiles/qmg.dir/src/comm/dist_spinor.cpp.o" "gcc" "CMakeFiles/qmg.dir/src/comm/dist_spinor.cpp.o.d"
  "/root/repo/src/comm/dist_wilson.cpp" "CMakeFiles/qmg.dir/src/comm/dist_wilson.cpp.o" "gcc" "CMakeFiles/qmg.dir/src/comm/dist_wilson.cpp.o.d"
  "/root/repo/src/core/context.cpp" "CMakeFiles/qmg.dir/src/core/context.cpp.o" "gcc" "CMakeFiles/qmg.dir/src/core/context.cpp.o.d"
  "/root/repo/src/core/ensembles.cpp" "CMakeFiles/qmg.dir/src/core/ensembles.cpp.o" "gcc" "CMakeFiles/qmg.dir/src/core/ensembles.cpp.o.d"
  "/root/repo/src/dirac/clover.cpp" "CMakeFiles/qmg.dir/src/dirac/clover.cpp.o" "gcc" "CMakeFiles/qmg.dir/src/dirac/clover.cpp.o.d"
  "/root/repo/src/dirac/gamma.cpp" "CMakeFiles/qmg.dir/src/dirac/gamma.cpp.o" "gcc" "CMakeFiles/qmg.dir/src/dirac/gamma.cpp.o.d"
  "/root/repo/src/dirac/wilson.cpp" "CMakeFiles/qmg.dir/src/dirac/wilson.cpp.o" "gcc" "CMakeFiles/qmg.dir/src/dirac/wilson.cpp.o.d"
  "/root/repo/src/fields/location.cpp" "CMakeFiles/qmg.dir/src/fields/location.cpp.o" "gcc" "CMakeFiles/qmg.dir/src/fields/location.cpp.o.d"
  "/root/repo/src/gauge/ensemble.cpp" "CMakeFiles/qmg.dir/src/gauge/ensemble.cpp.o" "gcc" "CMakeFiles/qmg.dir/src/gauge/ensemble.cpp.o.d"
  "/root/repo/src/gpusim/device.cpp" "CMakeFiles/qmg.dir/src/gpusim/device.cpp.o" "gcc" "CMakeFiles/qmg.dir/src/gpusim/device.cpp.o.d"
  "/root/repo/src/gpusim/kernels.cpp" "CMakeFiles/qmg.dir/src/gpusim/kernels.cpp.o" "gcc" "CMakeFiles/qmg.dir/src/gpusim/kernels.cpp.o.d"
  "/root/repo/src/lattice/blockmap.cpp" "CMakeFiles/qmg.dir/src/lattice/blockmap.cpp.o" "gcc" "CMakeFiles/qmg.dir/src/lattice/blockmap.cpp.o.d"
  "/root/repo/src/lattice/geometry.cpp" "CMakeFiles/qmg.dir/src/lattice/geometry.cpp.o" "gcc" "CMakeFiles/qmg.dir/src/lattice/geometry.cpp.o.d"
  "/root/repo/src/mg/coarse_op.cpp" "CMakeFiles/qmg.dir/src/mg/coarse_op.cpp.o" "gcc" "CMakeFiles/qmg.dir/src/mg/coarse_op.cpp.o.d"
  "/root/repo/src/mg/galerkin.cpp" "CMakeFiles/qmg.dir/src/mg/galerkin.cpp.o" "gcc" "CMakeFiles/qmg.dir/src/mg/galerkin.cpp.o.d"
  "/root/repo/src/mg/mrhs.cpp" "CMakeFiles/qmg.dir/src/mg/mrhs.cpp.o" "gcc" "CMakeFiles/qmg.dir/src/mg/mrhs.cpp.o.d"
  "/root/repo/src/mg/multigrid.cpp" "CMakeFiles/qmg.dir/src/mg/multigrid.cpp.o" "gcc" "CMakeFiles/qmg.dir/src/mg/multigrid.cpp.o.d"
  "/root/repo/src/mg/nullspace.cpp" "CMakeFiles/qmg.dir/src/mg/nullspace.cpp.o" "gcc" "CMakeFiles/qmg.dir/src/mg/nullspace.cpp.o.d"
  "/root/repo/src/mg/transfer.cpp" "CMakeFiles/qmg.dir/src/mg/transfer.cpp.o" "gcc" "CMakeFiles/qmg.dir/src/mg/transfer.cpp.o.d"
  "/root/repo/src/parallel/autotune.cpp" "CMakeFiles/qmg.dir/src/parallel/autotune.cpp.o" "gcc" "CMakeFiles/qmg.dir/src/parallel/autotune.cpp.o.d"
  "/root/repo/src/parallel/dispatch.cpp" "CMakeFiles/qmg.dir/src/parallel/dispatch.cpp.o" "gcc" "CMakeFiles/qmg.dir/src/parallel/dispatch.cpp.o.d"
  "/root/repo/src/parallel/thread_pool.cpp" "CMakeFiles/qmg.dir/src/parallel/thread_pool.cpp.o" "gcc" "CMakeFiles/qmg.dir/src/parallel/thread_pool.cpp.o.d"
  "/root/repo/src/util/logger.cpp" "CMakeFiles/qmg.dir/src/util/logger.cpp.o" "gcc" "CMakeFiles/qmg.dir/src/util/logger.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
