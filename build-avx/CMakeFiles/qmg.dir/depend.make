# Empty dependencies file for qmg.
# This may be replaced when dependencies are built.
