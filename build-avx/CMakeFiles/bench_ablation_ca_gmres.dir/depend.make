# Empty dependencies file for bench_ablation_ca_gmres.
# This may be replaced when dependencies are built.
