file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ca_gmres.dir/bench/bench_ablation_ca_gmres.cpp.o"
  "CMakeFiles/bench_ablation_ca_gmres.dir/bench/bench_ablation_ca_gmres.cpp.o.d"
  "bench_ablation_ca_gmres"
  "bench_ablation_ca_gmres.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ca_gmres.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
