file(REMOVE_RECURSE
  "CMakeFiles/bench_halo_exchange.dir/bench/bench_halo_exchange.cpp.o"
  "CMakeFiles/bench_halo_exchange.dir/bench/bench_halo_exchange.cpp.o.d"
  "bench_halo_exchange"
  "bench_halo_exchange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_halo_exchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
