# Empty dependencies file for bench_halo_exchange.
# This may be replaced when dependencies are built.
