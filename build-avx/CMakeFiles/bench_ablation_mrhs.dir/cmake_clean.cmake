file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mrhs.dir/bench/bench_ablation_mrhs.cpp.o"
  "CMakeFiles/bench_ablation_mrhs.dir/bench/bench_ablation_mrhs.cpp.o.d"
  "bench_ablation_mrhs"
  "bench_ablation_mrhs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mrhs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
