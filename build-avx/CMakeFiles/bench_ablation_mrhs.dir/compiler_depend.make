# Empty compiler generated dependencies file for bench_ablation_mrhs.
# This may be replaced when dependencies are built.
